// Package privacy bounds what the serving stack can leak to any single
// client over time. The P-of-N secret selection (see DESIGN.md) limits what
// one response reveals; nothing before this package limited what a *patient*
// client accumulates across requests and rotations. The pieces:
//
//   - a pure Rényi-DP accounting library (this file): per-query loss ε(α) at
//     configurable orders, the subsampling-amplification bound for a secret
//     fraction p = P/N of the ensemble answering, additive composition
//     across queries, and conversion to (ε, δ)-DP — the pMixed recipe
//     (james-flemings/pmixed) adapted to the Ensembler selection;
//   - a sharded per-client Ledger (ledger.go) whose record path is O(1)
//     atomics, keyed by the wire-negotiated client identity;
//   - a budget-aware Policy/Guard (policy.go) that escalates as a client's
//     budget drains: raise noise, force a selector rotation, then refuse.
//
// The package is tensor-free and imports nothing from the serving stack, so
// the accounting is testable against hand-computed values in isolation.
package privacy

import (
	"fmt"
	"math"
)

// RenyiDiv computes the Rényi divergence D_α(P‖Q) between two discrete
// distributions given as aligned probability slices. α = 1 is the KL
// divergence, α = +Inf the max divergence, and finite α > 1 the standard
//
//	D_α(P‖Q) = 1/(α-1) · log Σ_i p_i^α / q_i^(α-1).
//
// Entries with p_i = 0 contribute nothing; a q_i = 0 under p_i > 0 yields
// +Inf (the distributions are not absolutely continuous).
func RenyiDiv(p, q []float64, alpha float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("privacy: RenyiDiv over mismatched supports (%d vs %d)", len(p), len(q)))
	}
	if math.IsInf(alpha, 1) {
		worst := math.Inf(-1)
		for i := range p {
			if p[i] == 0 {
				continue
			}
			if q[i] == 0 {
				return math.Inf(1)
			}
			if r := math.Log(p[i] / q[i]); r > worst {
				worst = r
			}
		}
		return worst
	}
	if alpha == 1 {
		kl := 0.0
		for i := range p {
			if p[i] == 0 {
				continue
			}
			if q[i] == 0 {
				return math.Inf(1)
			}
			kl += p[i] * math.Log(p[i]/q[i])
		}
		return kl
	}
	if alpha <= 0 {
		panic(fmt.Sprintf("privacy: RenyiDiv at non-positive order %v", alpha))
	}
	sum := 0.0
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1)
		}
		sum += math.Pow(p[i], alpha) / math.Pow(q[i], alpha-1)
	}
	return math.Log(sum) / (alpha - 1)
}

// SubsampleEps is the amplification-by-subsampling bound for Rényi DP at
// integer order α ≥ 2: a mechanism with per-query loss eps, applied to a
// random fraction p of the ensemble (the P-of-N selection answers through
// p = P/N of the bodies), leaks at most
//
//	1/(α-1) · log( (1-p)^(α-1)(1+(α-1)p) + Σ_{k=2..α} C(α,k)(1-p)^(α-k) p^k e^{(k-1)·eps} ).
//
// The bound is monotone in p and never exceeds eps (equality at p = 1, no
// subsampling) — both pinned by property tests.
func SubsampleEps(eps, p float64, alpha int) float64 {
	if alpha < 2 {
		panic(fmt.Sprintf("privacy: SubsampleEps needs integer order >= 2, got %d", alpha))
	}
	if eps <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return eps
	}
	a := float64(alpha)
	// k = 0 and k = 1 terms of the binomial expansion, which carry no e^ε
	// factor, combined: (1-p)^α + α(1-p)^(α-1)p = (1-p)^(α-1)(1 + (α-1)p).
	sum := math.Pow(1-p, a-1) * (1 + (a-1)*p)
	for k := 2; k <= alpha; k++ {
		sum += binom(alpha, k) * math.Pow(1-p, a-float64(k)) * math.Pow(p, float64(k)) * math.Exp(float64(k-1)*eps)
	}
	return math.Log(sum) / (a - 1)
}

// binom is the binomial coefficient C(n, k) as a float64 (exact for the
// small orders the accountant uses).
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// EpsDelta converts an accumulated Rényi loss at order α into an (ε, δ)-DP
// guarantee via the standard conversion ε = ε_α + log(1/δ)/(α-1).
func EpsDelta(rdp, alpha, delta float64) float64 {
	if alpha <= 1 {
		panic(fmt.Sprintf("privacy: EpsDelta needs order > 1, got %v", alpha))
	}
	if delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("privacy: EpsDelta needs delta in (0,1), got %v", delta))
	}
	return rdp + math.Log(1/delta)/(alpha-1)
}

// Target mirrors pMixed's per-query Rényi divergence target for an ensemble
// of n models each answering with probability p (so p·n is the expected
// number of answering models — the P of the P-of-N selection), a total
// budget eps split across qBudget queries:
//
//	log( p·n·e^{(α-1)·eps/qBudget} + 1 − p·n ) / (4(α-1)).
//
// It is the per-query divergence cap under which qBudget compositions stay
// within eps at order α with the pMixed safety margin.
func Target(p float64, n int, eps float64, qBudget int, alpha float64) float64 {
	if alpha <= 1 {
		panic(fmt.Sprintf("privacy: Target needs order > 1, got %v", alpha))
	}
	if qBudget <= 0 {
		panic(fmt.Sprintf("privacy: Target needs a positive query budget, got %d", qBudget))
	}
	pn := p * float64(n)
	return math.Log(pn*math.Exp((alpha-1)*eps/float64(qBudget))+1-pn) / (4 * (alpha - 1))
}

// Accountant composes per-query Rényi losses at a fixed set of orders. The
// zero value is unusable; construct with NewAccountant. Composition in Rényi
// DP is additive per order, so Spend is a plain elementwise sum — the
// property the ledger's fixed-point per-row charge relies on.
type Accountant struct {
	orders []int
	spent  []float64
}

// NewAccountant creates an accountant tracking the given integer orders
// (each ≥ 2, the domain of the subsampling bound).
func NewAccountant(orders ...int) (*Accountant, error) {
	if len(orders) == 0 {
		return nil, fmt.Errorf("privacy: accountant needs at least one order")
	}
	for _, a := range orders {
		if a < 2 {
			return nil, fmt.Errorf("privacy: accountant order %d below 2", a)
		}
	}
	return &Accountant{orders: append([]int(nil), orders...), spent: make([]float64, len(orders))}, nil
}

// Orders returns the tracked Rényi orders.
func (a *Accountant) Orders() []int { return append([]int(nil), a.orders...) }

// Spent returns the accumulated loss per tracked order, aligned with
// Orders().
func (a *Accountant) Spent() []float64 { return append([]float64(nil), a.spent...) }

// Spend composes one query's loss, given per-order: losses must align with
// Orders().
func (a *Accountant) Spend(losses []float64) {
	if len(losses) != len(a.orders) {
		panic(fmt.Sprintf("privacy: Spend over %d losses for %d orders", len(losses), len(a.orders)))
	}
	for i, l := range losses {
		a.spent[i] += l
	}
}

// SpendSubsampled composes one query of unamplified loss eps under secret
// fraction p, amplifying at every tracked order.
func (a *Accountant) SpendSubsampled(eps, p float64) {
	for i, order := range a.orders {
		a.spent[i] += SubsampleEps(eps, p, order)
	}
}

// BestEpsDelta converts the accumulated loss to the tightest (ε, δ)-DP
// guarantee over the tracked orders, returning the ε and the order that
// achieved it.
func (a *Accountant) BestEpsDelta(delta float64) (eps float64, order int) {
	eps = math.Inf(1)
	for i, o := range a.orders {
		if e := EpsDelta(a.spent[i], float64(o), delta); e < eps {
			eps, order = e, o
		}
	}
	return eps, order
}
