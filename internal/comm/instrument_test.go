package comm

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"

	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/telemetry"
	"ensembler/internal/tensor"
)

// instrumentBodies builds n tiny deterministic bodies (local helper — the
// commtest harness can't be imported from inside comm).
func instrumentBodies(n int) []*nn.Network {
	out := make([]*nn.Network, n)
	for i := range out {
		out[i] = nn.NewNetwork("b",
			nn.NewConv2D("c", 4, 4, 3, 1, 1, true, rng.New(int64(i+1))),
			nn.NewFlatten())
	}
	return out
}

func instrumentInput(rows int) *tensor.Tensor {
	x := tensor.New(rows, 4, 8, 8)
	rng.New(9).FillNormal(x.Data, 0, 1)
	return x
}

// recordingObserver captures every mirrored tensor's identity data.
type recordingObserver struct {
	mu    sync.Mutex
	calls []string
	rows  int
}

func (o *recordingObserver) ObserveFeatures(model string, version int, f *tensor.Tensor) {
	o.mu.Lock()
	o.calls = append(o.calls, model)
	o.rows += f.Shape[0]
	o.mu.Unlock()
}

// TestServerMetricsAndObserver drives plain, batched, and failing requests
// through an instrumented server and checks every series advances as
// specified — including that the observer saw one call per input tensor.
func TestServerMetricsAndObserver(t *testing.T) {
	treg := telemetry.NewRegistry()
	sm := NewServerMetrics(treg)
	obs := &recordingObserver{}
	srv := NewServer(instrumentBodies(2), WithMetrics(sm), WithObserver(obs))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	defer func() {
		cancel()
		ln.Close()
		<-served
	}()

	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.ComputeFeatures = func(x *tensor.Tensor) *tensor.Tensor { return x }
	client.Select = nn.ConcatFeatures
	client.Tail = nn.NewNetwork("t", nn.NewLinear("fc", 2*4*8*8, 3, rng.New(5)))

	x := instrumentInput(2)
	if _, _, err := client.Infer(ctx, x); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.InferBatch(ctx, []*tensor.Tensor{x, x, x}); err != nil {
		t.Fatal(err)
	}
	// A failing request (wrong rank) still counts, as an error.
	bad := tensor.New(4, 8, 8)
	if _, _, err := client.Infer(ctx, bad); err == nil {
		t.Fatal("rank-3 features must be rejected")
	}

	if got := sm.Requests.Value(); got != 3 {
		t.Errorf("requests = %d, want 3", got)
	}
	if got := sm.Errors.Value(); got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
	// 2 rows + 3×2 rows; the rank-3 request contributes its leading dim (4).
	if got := sm.Images.Value(); got != 2+6+4 {
		t.Errorf("images = %d, want 12", got)
	}
	if got := sm.ServeSeconds.Count(); got != 3 {
		t.Errorf("serve histogram count = %d, want 3", got)
	}
	if got := sm.BatchInputs.Count(); got != 3 {
		t.Errorf("batch histogram count = %d, want 3", got)
	}

	// The observer saw the single request's tensor and each batched input,
	// but not the rank-3 garbage.
	obs.mu.Lock()
	calls, rows := len(obs.calls), obs.rows
	obs.mu.Unlock()
	if calls != 4 {
		t.Errorf("observer calls = %d, want 4 (1 single + 3 batched)", calls)
	}
	if rows != 8 {
		t.Errorf("observer rows = %d, want 8", rows)
	}

	var b strings.Builder
	if err := treg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ensembler_server_requests_total 3") {
		t.Errorf("exposition missing request counter:\n%s", b.String())
	}
}

// TestUninstrumentedServeUnchanged pins that a server constructed without
// WithMetrics/WithObserver behaves exactly as before (the options default to
// nil and the request path only nil-checks them).
func TestUninstrumentedServeUnchanged(t *testing.T) {
	srv := NewServer(instrumentBodies(2))
	resp := srv.process(&Request{Features: instrumentInput(1)})
	if resp.Err != "" {
		t.Fatalf("uninstrumented serve failed: %s", resp.Err)
	}
	if len(resp.Features) != 2 {
		t.Fatalf("got %d feature tensors, want 2", len(resp.Features))
	}
}

// TestObserverRejectsMaliciousShapes pins the trust boundary the review
// demands of the sampling hook: a request whose tensor claims an enormous
// shape over an empty data slice (cheap to transmit, catastrophic to
// allocate) must be rejected before it ever reaches the observer — the
// server answers with an error and keeps serving.
func TestObserverRejectsMaliciousShapes(t *testing.T) {
	obs := &recordingObserver{}
	srv := NewServer(instrumentBodies(2), WithObserver(obs))

	bomb := &tensor.Tensor{Shape: []int{1 << 30, 1 << 30, 2, 2}} // 2^62 claimed elements, no data
	for _, req := range []*Request{
		{Features: bomb},
		{Inputs: []*tensor.Tensor{bomb, instrumentInput(1)}},
	} {
		resp := srv.process(req)
		if resp.Err == "" {
			t.Errorf("request %+v must be rejected", req)
		}
	}
	// The well-formed input of the batched request was still safe to
	// mirror; the bomb never was.
	obs.mu.Lock()
	calls := len(obs.calls)
	obs.mu.Unlock()
	if calls != 1 {
		t.Errorf("observer saw %d tensors, want only the valid one", calls)
	}
	// The server still serves.
	if resp := srv.process(&Request{Features: instrumentInput(1)}); resp.Err != "" {
		t.Errorf("server dead after malicious request: %s", resp.Err)
	}
}
