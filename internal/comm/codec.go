package comm

// The binary wire codec: a length-prefixed, version-negotiated frame format
// replacing gob on the feature hot path. Gob spends the bulk of a request's
// wire time re-describing types and boxing float64s one reflect call at a
// time; the binary codec writes one header and the raw payload, reuses its
// encode/decode buffers across requests, and optionally ships float32 on
// the wire (half the bytes, ~1e-7 relative feature error — see README).
//
// Framing (all integers little-endian):
//
//	hello     = magic[4] version(u8) flags(u8) reserved(u16)   client→server
//	hello-ack = magic[4] version(u8) flags(u8) windowMs(u16)   server→client
//	frame     = length(u32) body
//	request   = 0x01 modelLen(u16) model version(u32) kind(u8) count(u16) tensor*
//	          | 0x03 traceID(u64) tflags(u8) modelLen(u16) model ...   (v3+)
//	response  = 0x02 modelLen(u16) model version(u32) errLen(u16) err
//	            [v2+: code(u16)] kind(u8)
//	            features: count(u16) tensor*
//	            outputs:  outer(u16) inner(u16) tensor*(outer×inner, row-major)
//	          | 0x04 traceID(u64) modelLen(u16) model ...              (v3+)
//	tensor    = rank(u8) dtype(u8) dims(u32)*rank payload(f64|f32 ×n)
//
// Version negotiation: the client's hello names the highest version it
// speaks; the server acks the version the connection will use —
// min(client, server), so a v2 client interoperates with a v1 server and
// vice versa — and echoes the subset of requested flags it accepts.
// Version 2 adds the response code field (the 429-style ErrOverloaded
// admission-control verdict) and puts the server's continuous-batching
// window, in milliseconds, in the ack's formerly-reserved u16 — advice a
// client's overload backoff can key off (0 = no batching window; v1 acks
// carry 0 there by construction). Version 3 adds the traced frame types
// 0x03/0x04: identical to 0x01/0x02 except that a trace context (u64 trace
// ID; on requests also a flags byte whose bit0 forces tail-sampling
// retention downstream) rides between the message byte and the model name,
// which is how one logical request's legs stitch into a single trace across
// connections and shards (see internal/trace). Traced frames are
// self-describing: a v3 client only sends 0x03 when it has a trace context,
// a v3 server only echoes 0x04 on a request that arrived as 0x03, and a
// connection negotiated below v3 never sees either type — legacy-gob and
// v1/v2 binary clients are byte-for-byte unaffected. Version 4 adds the
// client-identity extension for the per-client privacy-budget ledger: a
// client with an identity sets the 0x02 hello flag, and only when the ack
// names version ≥ 4 AND echoes the flag does it send one client-ID frame
// (0x05 idLen(u8) idBytes, 1–64 printable-ASCII bytes) before any request.
// The handshake-gating keeps v4 clients byte-compatible with v3 servers
// (the flag is ignored, the ID frame never sent), and a server clears the
// flag when the client's hello names a version below 4, so a hostile v3
// client cannot elicit an ID read. Peers that never send an ID — and all
// legacy gob clients — are bucketed by remote address instead. A server
// that receives bytes that are not the hello magic treats the connection as
// a legacy gob client — the magic's first byte (0xE5) is not a byte a gob
// stream can start with, so sniffing is unambiguous.
//
// Trust boundary: decoders validate every length against the remaining
// frame before allocating, so a hostile frame claiming 2^30 elements over a
// short body is rejected, not allocated. FuzzWireRequestFrame and
// FuzzWireStream run random bytes through both parsers.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"time"

	"ensembler/internal/tensor"
	"ensembler/internal/trace"
)

// WireFormat selects a client's wire protocol.
type WireFormat int

const (
	// WireBinary is the length-prefixed binary codec with float64 payloads
	// — bit-identical to gob's values at a fraction of the encode cost. The
	// default for Dial.
	WireBinary WireFormat = iota
	// WireBinaryF32 ships float32 payloads: half the bytes, ~1e-7 relative
	// rounding on transmitted features (see README for the accuracy
	// trade-off).
	WireBinaryF32
	// WireGob is the legacy gob protocol, for servers predating the binary
	// codec.
	WireGob
)

func (f WireFormat) String() string {
	switch f {
	case WireBinary:
		return "binary"
	case WireBinaryF32:
		return "binary+f32"
	case WireGob:
		return "gob"
	default:
		return fmt.Sprintf("WireFormat(%d)", int(f))
	}
}

const (
	wireVersion = 4
	wireFlagF32 = 0x01
	// wireFlagClientID in a v4+ hello announces that the client has an
	// identity to declare; echoed in the ack when the server will read the
	// client-ID frame (it never echoes it to a sub-v4 hello).
	wireFlagClientID = 0x02

	wireMsgRequest  = 0x01
	wireMsgResponse = 0x02
	// Traced variants (v3+): the body carries a trace context between the
	// message byte and the model name. Self-describing, so untraced requests
	// on a v3 connection still use the cheaper 0x01/0x02 layouts.
	wireMsgRequestTraced  = 0x03
	wireMsgResponseTraced = 0x04
	// wireMsgClientID (v4+) declares the connection's client identity for
	// privacy-budget accounting. Sent at most once, immediately after an ack
	// that accepted wireFlagClientID, before any request frame.
	wireMsgClientID = 0x05

	// wireTraceSampled in a traced request's flags byte forces tail-sampling
	// retention of this leg (the root leg won the coin, or was an error).
	wireTraceSampled = 0x01

	wireKindFeatures = 0x00
	wireKindBatched  = 0x01

	wireDtypeF64 = 0x00
	wireDtypeF32 = 0x01

	// maxWireFrame bounds one frame; larger requests must batch across
	// frames. 256 MiB comfortably holds the largest supported batch.
	maxWireFrame = 1 << 28
	maxWireModel = 4096
	maxWireRank  = 8
	// maxWireClientID bounds a declared client identity; long enough for a
	// UUID or a hostname, short enough that a ledger full of hostile IDs
	// stays small.
	maxWireClientID = 64
)

// wireMagic opens the hello and hello-ack. 0xE5 sits in the dead zone of
// gob's unsigned-integer prefix encoding (a gob stream starts with a byte
// < 0x80 or >= 0xF8), which is what makes server-side sniffing exact.
var wireMagic = [4]byte{0xE5, 'N', 'S', 'B'}

// helloBytes builds the 8-byte hello/ack for a version and flag set.
func helloBytes(version, flags byte) [8]byte {
	return [8]byte{wireMagic[0], wireMagic[1], wireMagic[2], wireMagic[3], version, flags, 0, 0}
}

// helloAckBytes builds the server's 8-byte ack, carrying the batching
// window advice (milliseconds, saturated at u16) in the trailing u16.
func helloAckBytes(version, flags byte, windowMs uint16) [8]byte {
	ack := helloBytes(version, flags)
	binary.LittleEndian.PutUint16(ack[6:8], windowMs)
	return ack
}

// windowAdviceMs converts a batch window to its wire form: whole
// milliseconds, saturated at the u16 ceiling, with sub-millisecond windows
// rounded up so a nonzero window is never advertised as "no batching".
func windowAdviceMs(window time.Duration) uint16 {
	if window <= 0 {
		return 0
	}
	ms := (window + time.Millisecond - 1) / time.Millisecond
	if ms > math.MaxUint16 {
		return math.MaxUint16
	}
	return uint16(ms)
}

// tensorAlloc abstracts where decoded tensors land: the serving path hands
// out arena storage recycled per request, the client and wiretap paths
// allocate from the heap.
type tensorAlloc interface {
	newTensor(shape []int) *tensor.Tensor
}

type heapAlloc struct{}

func (heapAlloc) newTensor(shape []int) *tensor.Tensor { return tensor.New(shape...) }

// arenaAlloc adapts a *tensor.Arena to the allocator interface. It is a
// defined type over Arena (not a wrapper struct) so that the *arenaAlloc
// stored in the interface is a plain pointer — a struct value would be boxed
// on every readRequest, one heap allocation per request.
type arenaAlloc tensor.Arena

func (al *arenaAlloc) newTensor(shape []int) *tensor.Tensor {
	// Wire payloads overwrite every element; no zeroing needed.
	return (*tensor.Arena)(al).NewTensor(shape...)
}

// --- encoding ---

// appendTensor encodes one tensor.
func appendTensor(buf []byte, t *tensor.Tensor, f32 bool) []byte {
	buf = append(buf, byte(len(t.Shape)))
	if f32 {
		buf = append(buf, wireDtypeF32)
	} else {
		buf = append(buf, wireDtypeF64)
	}
	for _, d := range t.Shape {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	if f32 {
		for _, v := range t.Data {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(v)))
		}
	} else {
		for _, v := range t.Data {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

// appendRequest encodes a request body (no length prefix). A nonzero trace
// context selects the v3 traced layout (0x03); callers must only pass one on
// connections that negotiated version ≥ 3.
func appendRequest(buf []byte, req *Request, f32 bool, tc trace.Context) ([]byte, error) {
	if len(req.Model) > maxWireModel {
		return buf, fmt.Errorf("comm: model name of %d bytes exceeds wire limit %d", len(req.Model), maxWireModel)
	}
	if tc.ID != 0 {
		buf = append(buf, wireMsgRequestTraced)
		buf = binary.LittleEndian.AppendUint64(buf, tc.ID)
		var tflags byte
		if tc.Sampled {
			tflags |= wireTraceSampled
		}
		buf = append(buf, tflags)
	} else {
		buf = append(buf, wireMsgRequest)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(req.Model)))
	buf = append(buf, req.Model...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(req.Version))
	if req.Inputs != nil {
		if len(req.Inputs) > math.MaxUint16 {
			return buf, fmt.Errorf("comm: batch of %d exceeds wire limit %d", len(req.Inputs), math.MaxUint16)
		}
		buf = append(buf, wireKindBatched)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(req.Inputs)))
		for _, t := range req.Inputs {
			if t == nil {
				return buf, fmt.Errorf("comm: nil tensor in batched request")
			}
			buf = appendTensor(buf, t, f32)
		}
		return buf, nil
	}
	if req.Features == nil {
		return buf, fmt.Errorf("comm: request carries no features")
	}
	buf = append(buf, wireKindFeatures)
	buf = binary.LittleEndian.AppendUint16(buf, 1)
	return appendTensor(buf, req.Features, f32), nil
}

// appendResponse encodes a response body (no length prefix). withCode emits
// the version-2 code field; a v1 connection omits it and the peer sees only
// the error text. A nonzero traceID echoes the request's trace context in
// the v3 traced layout (0x04); callers must only pass one for requests that
// arrived traced on a version ≥ 3 connection.
func appendResponse(buf []byte, resp *Response, f32, withCode bool, traceID uint64) ([]byte, error) {
	if len(resp.Model) > maxWireModel {
		return buf, fmt.Errorf("comm: model name of %d bytes exceeds wire limit %d", len(resp.Model), maxWireModel)
	}
	if len(resp.Err) > math.MaxUint16 {
		return buf, fmt.Errorf("comm: error string of %d bytes exceeds wire limit", len(resp.Err))
	}
	if resp.Code < 0 || resp.Code > math.MaxUint16 {
		return buf, fmt.Errorf("comm: response code %d out of wire range", resp.Code)
	}
	if traceID != 0 {
		buf = append(buf, wireMsgResponseTraced)
		buf = binary.LittleEndian.AppendUint64(buf, traceID)
	} else {
		buf = append(buf, wireMsgResponse)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(resp.Model)))
	buf = append(buf, resp.Model...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(resp.Version))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(resp.Err)))
	buf = append(buf, resp.Err...)
	if withCode {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(resp.Code))
	}
	if resp.Outputs != nil {
		outer := len(resp.Outputs)
		inner := 0
		if outer > 0 {
			inner = len(resp.Outputs[0])
		}
		if outer > math.MaxUint16 || inner > math.MaxUint16 {
			return buf, fmt.Errorf("comm: response outputs %d×%d exceed wire limits", outer, inner)
		}
		buf = append(buf, wireKindBatched)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(outer))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(inner))
		for _, row := range resp.Outputs {
			if len(row) != inner {
				return buf, fmt.Errorf("comm: ragged response outputs (%d vs %d per input)", len(row), inner)
			}
			for _, t := range row {
				if t == nil {
					return buf, fmt.Errorf("comm: nil tensor in response outputs")
				}
				buf = appendTensor(buf, t, f32)
			}
		}
		return buf, nil
	}
	buf = append(buf, wireKindFeatures)
	if len(resp.Features) > math.MaxUint16 {
		return buf, fmt.Errorf("comm: response of %d feature maps exceeds wire limit", len(resp.Features))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(resp.Features)))
	for _, t := range resp.Features {
		if t == nil {
			return buf, fmt.Errorf("comm: nil tensor in response features")
		}
		buf = appendTensor(buf, t, f32)
	}
	return buf, nil
}

// ValidClientID reports whether id may be declared on the wire: 1 to 64
// bytes of printable ASCII (no spaces or control bytes), so a hostile
// identity cannot smuggle log-injection or NUL tricks into the ledger, the
// admin JSON, or rotation causes.
func ValidClientID(id string) bool {
	if len(id) == 0 || len(id) > maxWireClientID {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x21 || id[i] > 0x7E {
			return false
		}
	}
	return true
}

// appendClientID encodes the v4 client-ID frame body (no length prefix).
func appendClientID(buf []byte, id string) []byte {
	buf = append(buf, wireMsgClientID)
	buf = append(buf, byte(len(id)))
	return append(buf, id...)
}

// parseClientID decodes a client-ID frame body, enforcing the same identity
// discipline ValidClientID states. Everything here came off the wire from
// an untrusted peer; a malformed frame drops the connection.
func parseClientID(body []byte) (string, error) {
	r := wireReader{b: body}
	msg, err := r.u8()
	if err != nil {
		return "", err
	}
	if msg != wireMsgClientID {
		return "", fmt.Errorf("comm: expected client-ID frame, got message type %d", msg)
	}
	n, err := r.u8()
	if err != nil {
		return "", err
	}
	if n == 0 || int(n) > maxWireClientID {
		return "", fmt.Errorf("comm: client ID of %d bytes outside [1,%d]", n, maxWireClientID)
	}
	id, err := r.str(int(n))
	if err != nil {
		return "", err
	}
	if !ValidClientID(id) {
		return "", fmt.Errorf("comm: client ID carries non-printable bytes")
	}
	if r.remaining() != 0 {
		return "", fmt.Errorf("comm: %d trailing bytes after client ID", r.remaining())
	}
	return id, nil
}

// readClientIDFrame reads the single client-ID frame an accepting v4
// handshake promises. The frame length is bounded before any read of the
// body — a hostile length cannot force an allocation — and the body lands in
// a stack buffer.
func readClientIDFrame(r io.Reader) (string, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", fmt.Errorf("comm: reading client-ID frame: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 3 || n > 2+maxWireClientID {
		return "", fmt.Errorf("comm: client-ID frame of %d bytes outside [3,%d]", n, 2+maxWireClientID)
	}
	var body [2 + maxWireClientID]byte
	if _, err := io.ReadFull(r, body[:n]); err != nil {
		return "", fmt.Errorf("comm: reading client-ID frame: %w", err)
	}
	return parseClientID(body[:n])
}

// --- decoding ---

// wireReader is a bounds-checked cursor over one frame body.
type wireReader struct {
	b   []byte
	off int
}

func (r *wireReader) remaining() int { return len(r.b) - r.off }

func (r *wireReader) u8() (byte, error) {
	if r.remaining() < 1 {
		return 0, fmt.Errorf("comm: truncated frame")
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *wireReader) u16() (int, error) {
	if r.remaining() < 2 {
		return 0, fmt.Errorf("comm: truncated frame")
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return int(v), nil
}

func (r *wireReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("comm: truncated frame")
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *wireReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("comm: truncated frame")
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *wireReader) str(n int) (string, error) {
	if r.remaining() < n {
		return "", fmt.Errorf("comm: truncated frame")
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s, nil
}

// tensor decodes one tensor, validating every dimension against the bytes
// actually present before allocating — the rule that keeps a hostile frame
// from turning a 20-byte message into a multi-gigabyte allocation.
func (r *wireReader) tensor(alloc tensorAlloc, shapeBuf []int) (*tensor.Tensor, error) {
	rank, err := r.u8()
	if err != nil {
		return nil, err
	}
	if rank == 0 || rank > maxWireRank {
		return nil, fmt.Errorf("comm: tensor rank %d out of range [1,%d]", rank, maxWireRank)
	}
	dtype, err := r.u8()
	if err != nil {
		return nil, err
	}
	width := 8
	switch dtype {
	case wireDtypeF64:
	case wireDtypeF32:
		width = 4
	default:
		return nil, fmt.Errorf("comm: unknown tensor dtype %d", dtype)
	}
	shape := shapeBuf[:0]
	maxElems := r.remaining() / width
	n := 1
	for i := 0; i < int(rank); i++ {
		d, err := r.u32()
		if err != nil {
			return nil, err
		}
		// n stays ≤ maxElems (< 2^28) before each multiply and d < 2^32, so
		// the product cannot overflow a 64-bit int before the bound check.
		if d == 0 {
			return nil, fmt.Errorf("comm: zero tensor dimension")
		}
		if n *= int(d); n > maxElems {
			return nil, fmt.Errorf("comm: tensor of %d elements exceeds frame size", n)
		}
		shape = append(shape, int(d))
	}
	if r.remaining() < n*width {
		return nil, fmt.Errorf("comm: tensor payload truncated (%d elements, %d bytes left)", n, r.remaining())
	}
	t := alloc.newTensor(shape)
	src := r.b[r.off:]
	if dtype == wireDtypeF64 {
		for i := 0; i < n; i++ {
			t.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
		}
		r.off += 8 * n
	} else {
		for i := 0; i < n; i++ {
			t.Data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:])))
		}
		r.off += 4 * n
	}
	return t, nil
}

// parseRequestInto decodes a request frame body into req. alloc places the
// tensor data; j (optional) donates its reusable Inputs slice so the serving
// path's steady state allocates nothing. tc (optional) receives the trace
// context when the frame uses the v3 traced layout; a traced frame with a
// nil tc is decoded and its trace header discarded (the wiretap path).
func parseRequestInto(body []byte, req *Request, alloc tensorAlloc, j *job, tc *trace.Context) error {
	r := wireReader{b: body}
	msg, err := r.u8()
	if err != nil {
		return err
	}
	switch msg {
	case wireMsgRequest:
	case wireMsgRequestTraced:
		id, err := r.u64()
		if err != nil {
			return err
		}
		tflags, err := r.u8()
		if err != nil {
			return err
		}
		if id == 0 {
			return fmt.Errorf("comm: traced request frame carries zero trace ID")
		}
		if tc != nil {
			tc.ID = id
			tc.Sampled = tflags&wireTraceSampled != 0
		}
	default:
		return fmt.Errorf("comm: expected request frame, got message type %d", msg)
	}
	mlen, err := r.u16()
	if err != nil {
		return err
	}
	if mlen > maxWireModel {
		return fmt.Errorf("comm: model name of %d bytes exceeds wire limit", mlen)
	}
	if req.Model, err = r.str(mlen); err != nil {
		return err
	}
	ver, err := r.u32()
	if err != nil {
		return err
	}
	if ver > math.MaxInt32 {
		return fmt.Errorf("comm: version %d out of range", ver)
	}
	req.Version = int(ver)
	kind, err := r.u8()
	if err != nil {
		return err
	}
	count, err := r.u16()
	if err != nil {
		return err
	}
	// The shape scratch must not live on this stack frame: it crosses the
	// allocator interface, so escape analysis would heap-move a local array
	// on every request. The job donates its persistent buffer; only the
	// job-less paths (client, wiretap) pay a per-call slice.
	var shapeBuf []int
	if j != nil {
		shapeBuf = j.shape[:0]
	} else {
		shapeBuf = make([]int, 0, maxWireRank)
	}
	switch kind {
	case wireKindFeatures:
		if count != 1 {
			return fmt.Errorf("comm: feature request carries %d tensors, want 1", count)
		}
		if req.Features, err = r.tensor(alloc, shapeBuf); err != nil {
			return err
		}
	case wireKindBatched:
		if count == 0 {
			return fmt.Errorf("comm: batched request carries no inputs")
		}
		inputs := []*tensor.Tensor(nil)
		if j != nil {
			inputs = j.inputs[:0]
		}
		for i := 0; i < count; i++ {
			t, err := r.tensor(alloc, shapeBuf)
			if err != nil {
				return err
			}
			inputs = append(inputs, t)
		}
		if j != nil {
			j.inputs = inputs
		}
		req.Inputs = inputs
	default:
		return fmt.Errorf("comm: unknown request kind %d", kind)
	}
	if r.remaining() != 0 {
		return fmt.Errorf("comm: %d trailing bytes after request", r.remaining())
	}
	return nil
}

// parseResponseInto decodes a response frame body into resp, allocating from
// the heap (the client hands decoded tensors to its caller). hasCode selects
// the version-2 layout, which carries the response code after the error
// text. echo (optional) receives the trace ID when the frame uses the v3
// traced layout.
func parseResponseInto(body []byte, resp *Response, hasCode bool, echo *uint64) error {
	r := wireReader{b: body}
	msg, err := r.u8()
	if err != nil {
		return err
	}
	switch msg {
	case wireMsgResponse:
	case wireMsgResponseTraced:
		id, err := r.u64()
		if err != nil {
			return err
		}
		if id == 0 {
			return fmt.Errorf("comm: traced response frame carries zero trace ID")
		}
		if echo != nil {
			*echo = id
		}
	default:
		return fmt.Errorf("comm: expected response frame, got message type %d", msg)
	}
	mlen, err := r.u16()
	if err != nil {
		return err
	}
	if mlen > maxWireModel {
		return fmt.Errorf("comm: model name of %d bytes exceeds wire limit", mlen)
	}
	if resp.Model, err = r.str(mlen); err != nil {
		return err
	}
	ver, err := r.u32()
	if err != nil {
		return err
	}
	if ver > math.MaxInt32 {
		return fmt.Errorf("comm: version %d out of range", ver)
	}
	resp.Version = int(ver)
	elen, err := r.u16()
	if err != nil {
		return err
	}
	if resp.Err, err = r.str(elen); err != nil {
		return err
	}
	if hasCode {
		if resp.Code, err = r.u16(); err != nil {
			return err
		}
	}
	kind, err := r.u8()
	if err != nil {
		return err
	}
	var shapeBuf [maxWireRank]int
	switch kind {
	case wireKindFeatures:
		count, err := r.u16()
		if err != nil {
			return err
		}
		if count > 0 {
			resp.Features = make([]*tensor.Tensor, count)
			for i := range resp.Features {
				if resp.Features[i], err = r.tensor(heapAlloc{}, shapeBuf[:]); err != nil {
					return err
				}
			}
		}
	case wireKindBatched:
		outer, err := r.u16()
		if err != nil {
			return err
		}
		inner, err := r.u16()
		if err != nil {
			return err
		}
		// Bound the slice headers against the bytes present: each tensor
		// costs at least 2 bytes of header.
		if outer*inner > r.remaining()/2+1 {
			return fmt.Errorf("comm: response grid %d×%d exceeds frame size", outer, inner)
		}
		resp.Outputs = make([][]*tensor.Tensor, outer)
		for i := range resp.Outputs {
			resp.Outputs[i] = make([]*tensor.Tensor, inner)
			for b := range resp.Outputs[i] {
				if resp.Outputs[i][b], err = r.tensor(heapAlloc{}, shapeBuf[:]); err != nil {
					return err
				}
			}
		}
	default:
		return fmt.Errorf("comm: unknown response kind %d", kind)
	}
	if r.remaining() != 0 {
		return fmt.Errorf("comm: %d trailing bytes after response", r.remaining())
	}
	return nil
}

// --- framed I/O ---

// writeFrame sends buf (whose first 4 bytes are reserved for the length
// prefix) in a single Write.
func writeFrame(w io.Writer, buf []byte) error {
	if len(buf) < 4 {
		panic("comm: writeFrame buffer missing length prefix reservation")
	}
	body := len(buf) - 4
	if body > maxWireFrame {
		return fmt.Errorf("comm: frame of %d bytes exceeds limit %d", body, maxWireFrame)
	}
	binary.LittleEndian.PutUint32(buf, uint32(body))
	_, err := w.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame into buf (growing it as needed)
// and returns the body.
func readFrame(r io.Reader, buf []byte) ([]byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return buf, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxWireFrame {
		return buf, nil, fmt.Errorf("comm: frame of %d bytes exceeds limit %d", n, maxWireFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf, nil, err
	}
	return buf, buf, nil
}

// --- client codec ---

// clientCodec is one connection's wire protocol from the client side. The
// trace context rides alongside the request (not inside it) so the Request
// struct — and with it the legacy gob type descriptor — never changes;
// readResponse returns the server's echoed trace ID (0 when untraced or on
// codecs that predate tracing).
type clientCodec interface {
	writeRequest(*Request, trace.Context) error
	readResponse(*Response) (uint64, error)
}

// binFramer is the framing state both ends of the binary codec share: the
// write/read halves of one connection plus their reusable buffers. The
// encode side reserves 4 bytes for the length prefix via frameStart; method
// bodies stay direct calls (no encode closures) so the server's per-request
// path performs no allocations.
type binFramer struct {
	w   io.Writer
	r   *bufio.Reader
	f32 bool
	// code marks a version-2 connection: response frames carry the code
	// field (ErrOverloaded et al). A v1 peer negotiated it away.
	code   bool
	encBuf []byte
	decBuf []byte
}

// frameStart returns the encode buffer with the length prefix reserved.
func (c *binFramer) frameStart() []byte { return append(c.encBuf[:0], 0, 0, 0, 0) }

// readBody reads the next frame into the reusable decode buffer.
func (c *binFramer) readBody() ([]byte, error) {
	buf, body, err := readFrame(c.r, c.decBuf)
	c.decBuf = buf
	return body, err
}

type binClientCodec struct {
	binFramer
	// traceOK marks a version-3 connection: traced frames may be sent. On
	// older connections the context is dropped here, so callers can set a
	// trace context unconditionally.
	traceOK bool
}

func (c *binClientCodec) writeRequest(req *Request, tc trace.Context) error {
	if !c.traceOK {
		tc = trace.Context{}
	}
	buf, err := appendRequest(c.frameStart(), req, c.f32, tc)
	c.encBuf = buf
	if err != nil {
		return err
	}
	return writeFrame(c.w, buf)
}

func (c *binClientCodec) readResponse(resp *Response) (uint64, error) {
	body, err := c.readBody()
	if err != nil {
		return 0, err
	}
	*resp = Response{}
	var echo uint64
	if err := parseResponseInto(body, resp, c.code, &echo); err != nil {
		return 0, err
	}
	return echo, nil
}

// negotiateClient performs the hello exchange on a fresh connection,
// returning the negotiated wire version, whether the server accepted the
// float32 payload flag, and the server's advertised continuous-batching
// window (0 when the server does not batch across connections, and on v1
// servers, whose acks carry zero in those bytes by construction). A
// non-empty clientID is offered via the v4 hello flag and declared in a
// client-ID frame only when the ack proves the server will read it, so the
// same client works unchanged against pre-v4 servers (which simply bucket
// it by address).
func negotiateClient(conn io.Writer, r *bufio.Reader, f32 bool, clientID string) (version byte, f32OK bool, window time.Duration, err error) {
	var flags byte
	if f32 {
		flags |= wireFlagF32
	}
	if clientID != "" {
		if !ValidClientID(clientID) {
			return 0, false, 0, fmt.Errorf("comm: client ID %q is not 1-%d printable ASCII bytes", clientID, maxWireClientID)
		}
		flags |= wireFlagClientID
	}
	hello := helloBytes(wireVersion, flags)
	if _, err := conn.Write(hello[:]); err != nil {
		return 0, false, 0, fmt.Errorf("comm: sending wire hello: %w", err)
	}
	var ack [8]byte
	if _, err := io.ReadFull(r, ack[:]); err != nil {
		return 0, false, 0, fmt.Errorf("comm: reading wire hello ack (a server predating the binary codec closes here; dial with WithWire(WireGob)): %w", err)
	}
	if [4]byte{ack[0], ack[1], ack[2], ack[3]} != wireMagic {
		return 0, false, 0, fmt.Errorf("comm: server is not speaking the binary wire protocol; dial with WithWire(WireGob)")
	}
	// The connection speaks min(client, server): a hostile or buggy ack
	// naming a version above what we offered is a protocol violation, and
	// version 0 predates the codec entirely.
	if ack[4] < 1 || ack[4] > wireVersion {
		return 0, false, 0, fmt.Errorf("comm: server negotiated unsupported wire version %d", ack[4])
	}
	window = time.Duration(binary.LittleEndian.Uint16(ack[6:8])) * time.Millisecond
	if clientID != "" && ack[4] >= 4 && ack[5]&wireFlagClientID != 0 {
		frame := appendClientID([]byte{0, 0, 0, 0}, clientID)
		if err := writeFrame(conn, frame); err != nil {
			return 0, false, 0, fmt.Errorf("comm: sending client ID: %w", err)
		}
	}
	return ack[4], ack[5]&wireFlagF32 != 0, window, nil
}

// decodeGobStream decodes a captured legacy gob request stream.
func decodeGobStream(stream []byte) ([]*Request, error) {
	dec := gob.NewDecoder(bytes.NewReader(stream))
	var out []*Request
	for {
		req := &Request{}
		if err := dec.Decode(req); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("comm: decoding gob stream: %w", err)
		}
		out = append(out, req)
	}
}

// DecodeWireStream parses a captured client→server byte stream — the
// adversary's observational power over one connection — and returns every
// decoded request, whichever protocol the client spoke. A stream opening
// with the binary hello parses as binary frames; anything else decodes as a
// gob stream. The framing is public by design (Kerckhoffs: only the
// client's selection is secret); the shard privacy tests invert exactly
// what this function recovers from a wiretap.
func DecodeWireStream(stream []byte) ([]*Request, error) {
	if len(stream) >= 4 && [4]byte{stream[0], stream[1], stream[2], stream[3]} == wireMagic {
		if len(stream) < 8 {
			return nil, fmt.Errorf("comm: truncated wire hello")
		}
		rest := stream[8:]
		var out []*Request
		for len(rest) > 0 {
			if len(rest) < 4 {
				return out, fmt.Errorf("comm: truncated frame header")
			}
			n := binary.LittleEndian.Uint32(rest)
			if n > maxWireFrame {
				return out, fmt.Errorf("comm: frame of %d bytes exceeds limit", n)
			}
			if len(rest) < 4+int(n) {
				return out, fmt.Errorf("comm: truncated frame body")
			}
			body := rest[4 : 4+int(n)]
			rest = rest[4+int(n):]
			// A v4 capture may open with the client-ID frame; the wiretap's
			// request recovery skips (but still validates) it.
			if len(body) > 0 && body[0] == wireMsgClientID {
				if _, err := parseClientID(body); err != nil {
					return out, err
				}
				continue
			}
			req := &Request{}
			if err := parseRequestInto(body, req, heapAlloc{}, nil, nil); err != nil {
				return out, err
			}
			out = append(out, req)
		}
		return out, nil
	}
	return decodeGobStream(stream)
}
