package defense

import (
	"testing"

	"ensembler/internal/data"
	"ensembler/internal/ensemble"
	"ensembler/internal/nn"
	"ensembler/internal/split"
)

func tinyArch() split.Arch {
	return split.Arch{InC: 3, H: 8, W: 8, HeadC: 4, BlockWidths: []int{8, 16}, Classes: 4, UseMaxPool: true}
}

func tinySplits(seed int64) *data.Splits {
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, H: 8, W: 8, Train: 96, Aux: 32, Test: 48, Seed: seed})
	for _, ds := range []*data.Dataset{sp.Train, sp.Aux, sp.Test} {
		ds.Classes = 4
		for i, l := range ds.Labels {
			ds.Labels[i] = l % 4
		}
	}
	return sp
}

var opts = split.TrainOptions{Epochs: 3, BatchSize: 16, LR: 0.05}

func TestNonePipeline(t *testing.T) {
	sp := tinySplits(1)
	p := TrainNone(tinyArch(), sp.Train, opts, 2)
	if p.Name() != "None" {
		t.Errorf("name %q", p.Name())
	}
	if p.Model.Noise != nil {
		t.Error("None must have no noise layer")
	}
	if len(p.Bodies()) != 1 {
		t.Error("single pipeline exposes one body")
	}
	if acc := p.Accuracy(sp.Test); acc < 0.3 {
		t.Errorf("accuracy %.3f below chance margin", acc)
	}
	x, _ := sp.Test.Batch([]int{0, 1})
	f := p.ClientFeatures(x)
	if f.Shape[1] != 4 {
		t.Errorf("feature shape %v", f.Shape)
	}
}

func TestSinglePipelineHasFixedNoise(t *testing.T) {
	sp := tinySplits(3)
	p := TrainSingle(tinyArch(), 0.1, sp.Train, opts, 4)
	if p.Model.Noise == nil || p.Model.Noise.Mode != nn.NoiseFixed {
		t.Fatal("Single must carry fixed noise")
	}
	// Features must include the noise: differ from the raw head output.
	x, _ := sp.Test.Batch([]int{0})
	if p.ClientFeatures(x).AllClose(p.Model.Head.Forward(x, false), 1e-9) {
		t.Error("noise not applied to transmitted features")
	}
}

func TestDRSingleHasDropoutTail(t *testing.T) {
	sp := tinySplits(5)
	p := TrainDRSingle(tinyArch(), 0.5, sp.Train, opts, 6)
	if _, ok := p.Model.Tail.Layers[0].(*nn.Dropout); !ok {
		t.Fatal("DR-single tail must start with dropout")
	}
	if acc := p.Accuracy(sp.Test); acc < 0.3 {
		t.Errorf("accuracy %.3f below chance margin", acc)
	}
}

func TestShredderNoiseGrows(t *testing.T) {
	sp := tinySplits(7)
	p := TrainShredder(tinyArch(), 0.05, 5e-3, sp.Train, opts, 8, nil)
	if p.Model.Noise == nil || p.Model.Noise.Mode != nn.NoiseTrainable {
		t.Fatal("Shredder must carry trainable noise")
	}
	// The learned noise should have grown beyond its tiny initialization
	// (the −μ‖n‖² bonus pushes it up wherever CE allows).
	c, h, w := tinyArch().HeadOutShape()
	initNorm := 0.05 * float64(c*h*w) // loose bound: E[|n|] per element ~ 0.05
	if p.Model.Noise.Noise.Value.L2Norm() < 0.05 {
		t.Error("Shredder noise should be nonzero after training")
	}
	_ = initNorm
	if acc := p.Accuracy(sp.Test); acc < 0.3 {
		t.Errorf("accuracy %.3f collapsed — noise bonus too strong", acc)
	}
}

func ensCfg(seed int64) ensemble.Config {
	return ensemble.Config{
		Arch: tinyArch(), N: 3, P: 2, Sigma: 0.05, Lambda: 0.5, Seed: seed,
		Stage1:      opts,
		Stage3:      split.TrainOptions{Epochs: 5, BatchSize: 16, LR: 0.05},
		Stage1Noise: true,
	}
}

func TestEnsemblePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, H: 8, W: 8, Train: 192, Aux: 32, Test: 64, Seed: 9})
	for _, ds := range []*data.Dataset{sp.Train, sp.Aux, sp.Test} {
		ds.Classes = 4
		for i, l := range ds.Labels {
			ds.Labels[i] = l % 4
		}
	}
	cfg := ensCfg(10)
	cfg.Stage1.Epochs = 5
	cfg.Stage3.Epochs = 7
	p := TrainEnsembler(cfg, sp.Train, nil)
	if p.Name() != "Ensembler" {
		t.Errorf("name %q", p.Name())
	}
	if len(p.Bodies()) != 3 {
		t.Errorf("expected 3 bodies, got %d", len(p.Bodies()))
	}
	if acc := p.Accuracy(sp.Test); acc < 0.3 {
		t.Errorf("accuracy %.3f below chance margin", acc)
	}
	if p.Ensembler() == nil {
		t.Error("Ensembler accessor nil")
	}
}

func TestDRNVariantSkipsNoiseAndReg(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	sp := tinySplits(11)
	p := TrainDRN(ensCfg(12), 0.3, sp.Train, nil)
	if p.Name() != "DR-10" {
		t.Errorf("name %q", p.Name())
	}
	e := p.Ensembler()
	if e.Cfg.Lambda != 0 || e.Cfg.Sigma != 0 || e.Cfg.Stage1Noise {
		t.Error("DR-N must disable noise and the regularizer")
	}
	if e.Noise != nil {
		t.Error("DR-N final pipeline must have no noise layer")
	}
	// Members' tails must carry dropout.
	if _, ok := e.Members[0].Tail.Layers[0].(*nn.Dropout); !ok {
		t.Error("DR-N member tails must start with dropout")
	}
}
