package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/ensemble"
	"ensembler/internal/faultpoint"
	"ensembler/internal/nn"
	"ensembler/internal/tensor"
	"ensembler/internal/trace"
)

// Runtime is the client-side half of the pipeline as the scatter-gather
// client uses it: head+noise feature computation, the secret selection over
// the reassembled N-body feature order, and the tail. The networks behind
// these hooks cache forward state, so one Runtime serves one request at a
// time; the Client keeps a free list and builds more through its factory as
// concurrency demands.
type Runtime struct {
	// Features computes the transmitted representation for an image batch.
	Features func(x *tensor.Tensor) *tensor.Tensor
	// Select applies the secret selector to the N reassembled feature
	// matrices. Entries for bodies hosted by failed-but-unselected shards
	// are nil; Select must only touch the selected indices (the ensemble
	// selector does by construction).
	Select func(features []*tensor.Tensor) *tensor.Tensor
	// Tail maps the selected features to logits.
	Tail *nn.Network
	// Selected lists the body indices Select actually reads — the knowledge
	// that makes shard loss survivable: a request fails only when a shard
	// hosting one of these is unreachable. nil means every body is needed.
	Selected []int
}

// PipelineRuntime adapts a trained pipeline to the Client's runtime
// factory: each call clones the client-side networks (head, fixed noise,
// selector, tail), so pooled concurrent requests never share forward
// caches.
func PipelineRuntime(e *ensemble.Ensembler) func() (*Runtime, error) {
	return func() (*Runtime, error) {
		rt := e.NewClientRuntime()
		return &Runtime{
			Features: rt.Features,
			Select:   rt.Select,
			Tail:     rt.Tail,
			Selected: rt.Selector.Indices,
		}, nil
	}
}

// Config describes a sharded fleet from the client's point of view.
type Config struct {
	// Addrs are the K shard server addresses, in shard order.
	Addrs []string
	// Ranges are the body assignments per shard — typically Plan(N, K).
	// They must be contiguous, disjoint, and cover [0, N).
	Ranges []Range
	// N is the total ensemble size the ranges must cover.
	N int
	// NewRuntime builds one client runtime (see PipelineRuntime). Called
	// lazily as concurrent requests demand runtimes.
	NewRuntime func() (*Runtime, error)
	// PoolSize bounds the connection pool per shard (default 4).
	PoolSize int
	// Model and Version are the optional routing header each shard request
	// carries; zero values mean the shard's default model at its current
	// version.
	Model   string
	Version int
	// Retries is how many additional attempts a failed shard exchange gets
	// before the shard is declared failed for the request (default 1; < 0
	// disables retries). The pool discards broken connections, so a retry
	// dials fresh.
	Retries int
	// HedgeAfter, when positive, launches a second request on another
	// pooled connection to the same shard if the first has not answered
	// within this duration — straggler insurance; first answer wins, the
	// loser is cancelled.
	HedgeAfter time.Duration
	// DownAfter is the circuit-breaker threshold: this many consecutive
	// failures open a shard's circuit (default 3). An open circuit
	// short-circuits requests to the shard — no dial, no retry storm — and
	// recovery runs through the half-open single-probe admission below.
	DownAfter int
	// ProbeTimeout bounds the single half-open probe a recovering shard
	// gets (default 1s). A cleanly dead process refuses connections
	// immediately, but a black-holed host (partition, dropped SYNs) would
	// otherwise stall the probing gather for the kernel connect timeout.
	ProbeTimeout time.Duration
	// BreakerBackoff is the first reopen wait after a circuit opens
	// (default 500ms); each failed half-open probe doubles it up to
	// BreakerMaxBackoff (default 15s), with ±BreakerJitter fractional
	// jitter (default 0.2; negative disables) so a fleet of clients does
	// not re-probe a recovering shard in lockstep.
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	BreakerJitter     float64
	// BreakerSeed seeds the jitter rng (shard k uses BreakerSeed+k), so
	// tests replay exact reopen schedules. 0 means seed 1.
	BreakerSeed int64
	// Tracer, when set, makes every Infer a root trace leg: head compute,
	// per-shard scatter round trips (hedges and retries marked), and
	// select+tail each become spans, and the minted trace ID rides every
	// shard exchange on the wire so the shard servers' own legs stitch
	// under the same trace (see internal/trace).
	Tracer *trace.Tracer
}

// Health is one shard's observed state. Down is the compatibility view of
// the circuit: true whenever the breaker is not closed.
type Health struct {
	Addr                string
	Bodies              Range
	Down                bool
	Breaker             BreakerState
	Requests            uint64
	Failures            uint64
	Hedged              uint64
	ShortCircuits       uint64 // requests answered by an open circuit, no wire traffic
	BreakerOpens        uint64 // closed/half-open → open transitions
	ReopenIn            time.Duration
	ConsecutiveFailures int
	LastErr             string
}

// shardHealth tracks one shard's wire counters under a mutex plus its
// circuit breaker (the counters are touched once per request per shard;
// contention is negligible next to a network round trip). Requests and
// failures count actual wire attempts; short-circuited requests count only
// in shortCircuits — an open circuit generating zero traffic must not look
// like a shard failing traffic.
type shardHealth struct {
	mu            sync.Mutex
	requests      uint64
	failures      uint64
	hedged        uint64
	shortCircuits uint64
	lastErr       string
	br            *breaker
}

// succeed records one successful exchange — regardless of which leg won it:
// a hedge-leg success closes the circuit and clears the failure streak
// exactly like a primary-leg success (TestHedgeLegSuccessResetsBreaker pins
// this).
func (h *shardHealth) succeed() {
	h.mu.Lock()
	h.requests++
	h.lastErr = ""
	h.mu.Unlock()
	h.br.recordSuccess()
}

func (h *shardHealth) fail(err error) {
	h.mu.Lock()
	h.requests++
	h.failures++
	if err != nil {
		h.lastErr = err.Error()
	}
	h.mu.Unlock()
	h.br.recordFailure(time.Now())
}

func (h *shardHealth) hedge() {
	h.mu.Lock()
	h.hedged++
	h.mu.Unlock()
}

func (h *shardHealth) shortCircuit() {
	h.mu.Lock()
	h.shortCircuits++
	h.mu.Unlock()
}

// taggedRuntime ties a runtime to the configuration epoch that built it, so
// Reconfigure can retire stale runtimes as they are released.
type taggedRuntime struct {
	rt    *Runtime
	epoch uint64
}

// Client is the scatter-gather runtime over a sharded fleet: one connection
// pool per shard, concurrent fan-out of each request's features to all K
// shards, reassembly of the N feature vectors in body order, and the secret
// selection applied locally. Safe for concurrent use.
type Client struct {
	cfg    Config
	pools  []*comm.Pool
	health []*shardHealth
	// fps are the per-shard exchange fault sites (shard/exchange/<k>),
	// consulted once per attempt leg — one atomic load each when disarmed.
	fps []*faultpoint.Site

	// acts recycles trace span storage across requests so a traced Infer
	// performs no per-request span allocation.
	acts sync.Pool

	mu         sync.Mutex
	newRuntime func() (*Runtime, error)
	rtEpoch    uint64
	runtimes   []*taggedRuntime
}

// NewClient validates the fleet layout and wires one connection pool per
// shard. Connections are dialed lazily, so a fleet with a dead shard still
// constructs — the failure surfaces per request, where the selector decides
// whether it matters.
func NewClient(cfg Config) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("shard: client needs at least one shard address")
	}
	if len(cfg.Addrs) != len(cfg.Ranges) {
		return nil, fmt.Errorf("shard: %d addresses for %d body ranges", len(cfg.Addrs), len(cfg.Ranges))
	}
	if cfg.NewRuntime == nil {
		return nil, fmt.Errorf("shard: client needs a runtime factory")
	}
	lo := 0
	for k, r := range cfg.Ranges {
		if r.Lo != lo || r.Hi <= r.Lo {
			return nil, fmt.Errorf("shard: ranges must be contiguous and non-empty; shard %d has %v after offset %d", k, r, lo)
		}
		lo = r.Hi
	}
	if lo != cfg.N {
		return nil, fmt.Errorf("shard: ranges cover %d bodies, config says N=%d", lo, cfg.N)
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 4
	}
	if cfg.Retries == 0 {
		cfg.Retries = 1
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 3
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.BreakerBackoff <= 0 {
		cfg.BreakerBackoff = 500 * time.Millisecond
	}
	if cfg.BreakerMaxBackoff <= 0 {
		cfg.BreakerMaxBackoff = 15 * time.Second
	}
	if cfg.BreakerJitter == 0 {
		cfg.BreakerJitter = 0.2
	}
	if cfg.BreakerSeed == 0 {
		cfg.BreakerSeed = 1
	}
	c := &Client{cfg: cfg, newRuntime: cfg.NewRuntime}
	c.acts.New = func() any { return new(trace.Active) }
	for k, addr := range cfg.Addrs {
		pool, err := comm.NewPool(addr, cfg.PoolSize, func(cc *comm.Client) error {
			cc.Model = cfg.Model
			cc.Version = cfg.Version
			return nil
		}, comm.WithDialFault(fmt.Sprintf("shard/dial/%d", k)))
		if err != nil {
			for _, p := range c.pools {
				p.Close()
			}
			return nil, err
		}
		c.pools = append(c.pools, pool)
		c.health = append(c.health, &shardHealth{br: newBreaker(
			cfg.DownAfter, cfg.BreakerBackoff, cfg.BreakerMaxBackoff,
			cfg.BreakerJitter, cfg.BreakerSeed+int64(k))})
		c.fps = append(c.fps, faultpoint.New(fmt.Sprintf("shard/exchange/%d", k)))
	}
	return c, nil
}

// Shards reports the fleet size K.
func (c *Client) Shards() int { return len(c.pools) }

// Health snapshots every shard's observed state, in shard order.
func (c *Client) Health() []Health {
	now := time.Now()
	out := make([]Health, len(c.health))
	for k, h := range c.health {
		state, consecFails, opens, reopenIn := h.br.snapshot(now)
		h.mu.Lock()
		out[k] = Health{
			Addr:                c.cfg.Addrs[k],
			Bodies:              c.cfg.Ranges[k],
			Down:                state != BreakerClosed,
			Breaker:             state,
			Requests:            h.requests,
			Failures:            h.failures,
			Hedged:              h.hedged,
			ShortCircuits:       h.shortCircuits,
			BreakerOpens:        opens,
			ReopenIn:            reopenIn,
			ConsecutiveFailures: consecFails,
			LastErr:             h.lastErr,
		}
		h.mu.Unlock()
	}
	return out
}

// Reconfigure swaps the runtime factory — the client half of a selector
// rotation or model hot swap. In-flight requests finish on the runtime they
// acquired; released stale runtimes are dropped and subsequent requests
// build fresh ones through the new factory. The shard servers see nothing:
// a rotation changes only the client-side secret.
func (c *Client) Reconfigure(newRuntime func() (*Runtime, error)) {
	if newRuntime == nil {
		return
	}
	c.mu.Lock()
	c.newRuntime = newRuntime
	c.rtEpoch++
	c.runtimes = nil
	c.mu.Unlock()
}

// Close tears down every shard pool.
func (c *Client) Close() error {
	var first error
	for _, p := range c.pools {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (c *Client) acquireRuntime() (*taggedRuntime, error) {
	c.mu.Lock()
	if n := len(c.runtimes); n > 0 {
		rt := c.runtimes[n-1]
		c.runtimes = c.runtimes[:n-1]
		c.mu.Unlock()
		return rt, nil
	}
	factory, epoch := c.newRuntime, c.rtEpoch
	c.mu.Unlock()
	rt, err := factory()
	if err != nil {
		return nil, fmt.Errorf("shard: building client runtime: %w", err)
	}
	if rt == nil || rt.Features == nil || rt.Select == nil || rt.Tail == nil {
		return nil, fmt.Errorf("shard: runtime factory returned an incompletely wired runtime")
	}
	return &taggedRuntime{rt: rt, epoch: epoch}, nil
}

func (c *Client) releaseRuntime(rt *taggedRuntime) {
	c.mu.Lock()
	if rt.epoch == c.rtEpoch {
		c.runtimes = append(c.runtimes, rt)
	}
	c.mu.Unlock()
}

// Infer runs one collaborative inference across the fleet: head features
// computed once locally, scattered to all K shards concurrently, the N
// feature vectors gathered in body order, and selection + tail applied
// locally. The round-trip component of the returned timing is the
// wall-clock of the slowest shard (the fan-out is concurrent); byte counts
// sum over shards.
func (c *Client) Infer(ctx context.Context, x *tensor.Tensor) (logits *tensor.Tensor, t comm.Timing, err error) {
	tagged, err := c.acquireRuntime()
	if err != nil {
		return nil, t, err
	}
	defer c.releaseRuntime(tagged)
	rt := tagged.rt

	// This is the root leg of the trace: the ID minted here rides every
	// shard exchange, and the retention coin is flipped once so all legs
	// retain (or not) together. Only this goroutine touches act — the
	// per-shard goroutines report through their results/stats slots and the
	// scatter spans are recorded after the join.
	tr := c.cfg.Tracer
	var act *trace.Active
	var tc trace.Context
	if tr != nil {
		act = c.acts.Get().(*trace.Active)
		tc = tr.Root(act)
		defer func() {
			tr.Finish(act, err != nil)
			c.acts.Put(act)
		}()
	}

	start := time.Now()
	feats := rt.Features(x)
	t.Client = time.Since(start)
	tr.SpanArg(act, trace.StageClient, 0, start, t.Client)

	netStart := time.Now()
	results := make([]*comm.Exchanged, len(c.pools))
	timings := make([]comm.Timing, len(c.pools))
	stats := make([]exchangeStats, len(c.pools))
	errs := make([]error, len(c.pools))
	var wg sync.WaitGroup
	for k := range c.pools {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			results[k], timings[k], stats[k], errs[k] = c.exchange(ctx, k, feats, tc)
		}(k)
	}
	wg.Wait()
	t.RoundTrip = time.Since(netStart)
	for _, st := range timings {
		t.BytesUp += st.BytesUp
		t.BytesDown += st.BytesDown
	}
	if tr != nil {
		// One scatter span per shard (Arg = shard index; duration is that
		// shard's cumulative round-trip time, retries included), plus
		// zero-length marker spans for every retry and hedge — visible in
		// the timeline exactly where the straggler insurance fired.
		for k := range c.pools {
			tr.SpanArg(act, trace.StageScatter, int32(k), netStart, timings[k].RoundTrip)
			for r := 0; r < stats[k].retries; r++ {
				tr.SpanArg(act, trace.StageRetry, int32(k), netStart, 0)
			}
			if stats[k].hedged {
				tr.SpanArg(act, trace.StageHedge, int32(k), netStart, 0)
			}
		}
	}

	// Every shard whose features the selection will consume must have
	// answered from the same model epoch: during a rolling fleet reload,
	// one shard may serve a newer version than another, and mixing their
	// body outputs would produce logits matching neither pipeline — with
	// nothing downstream able to tell. Shape-identical wrongness must be
	// rejected here or nowhere. Unselected shards are exempt for the same
	// reason their death is survivable: their features are never read, so
	// a version-skewed answer from one is as harmless as no answer — and
	// exempting them is what keeps a rolling reload zero-downtime for
	// clients whose selection sits on the already-consistent shards.
	epochK := -1
	for k, res := range results {
		if errs[k] != nil || !selectionNeeds(rt.Selected, c.cfg.Ranges[k]) {
			continue
		}
		if epochK < 0 {
			epochK = k
			continue
		}
		first := results[epochK]
		if res.Model != first.Model || res.Version != first.Version {
			return nil, t, fmt.Errorf("shard: selected bodies answered from mixed epochs (%s v%d at shard %d vs %s v%d at shard %d) — mid-reload, retry",
				first.Model, first.Version, epochK, res.Model, res.Version, k)
		}
	}

	features := make([]*tensor.Tensor, c.cfg.N)
	for k, r := range c.cfg.Ranges {
		if errs[k] != nil {
			// Graceful degradation: the loss only matters if the secret
			// selection reads one of this shard's bodies. Unselected
			// entries stay nil; Select never touches them.
			if selectionNeeds(rt.Selected, r) {
				return nil, t, fmt.Errorf("shard: shard %d (%s, bodies %s) hosts selected bodies and failed: %w",
					k, c.cfg.Addrs[k], r, errs[k])
			}
			continue
		}
		copy(features[r.Lo:r.Hi], results[k].Features)
	}

	start = time.Now()
	logits, err = finish(rt, features)
	tail := time.Since(start)
	t.Client += tail
	tr.SpanArg(act, trace.StageClient, 1, start, tail)
	return logits, t, err
}

// selectionNeeds reports whether any selected body index falls in the
// range; a nil selection means every body is needed.
func selectionNeeds(selected []int, r Range) bool {
	if selected == nil {
		return true
	}
	for _, i := range selected {
		if r.Contains(i) {
			return true
		}
	}
	return false
}

// finish applies selection and tail, converting a panic (a malformed
// response that slipped past per-tensor validation, or a Select touching a
// nil slot) into an error — shard servers are as untrusted as the monolith.
func finish(rt *Runtime, features []*tensor.Tensor) (logits *tensor.Tensor, err error) {
	defer func() {
		if r := recover(); r != nil {
			logits, err = nil, fmt.Errorf("shard: assembling response rejected: %v", r)
		}
	}()
	return rt.Tail.Forward(rt.Select(features), false), nil
}

// exchangeStats reports what straggler insurance an exchange consumed, so
// Infer can record retry/hedge marker spans after the scatter-gather joins
// (the per-shard goroutines must not touch the shared trace.Active).
type exchangeStats struct {
	retries int  // attempts beyond the first
	hedged  bool // a hedge request was launched on some attempt
}

// exchange runs the feature round trip against one shard with the
// configured retry and hedging policy, updating the shard's circuit
// breaker. An open circuit short-circuits without touching the wire; a
// half-open one admits this request as the single recovery probe. The trace
// context (if any) rides every attempt, stitching the shard server's leg
// into the caller's trace.
func (c *Client) exchange(ctx context.Context, k int, feats *tensor.Tensor, tc trace.Context) (*comm.Exchanged, comm.Timing, exchangeStats, error) {
	h := c.health[k]
	var total comm.Timing
	var st exchangeStats
	admit, probe := h.br.allow(time.Now())
	if !admit {
		// Short-circuit: no dial, no retries, a constant-cost refusal. The
		// decision depends only on the shard's observed health — never on
		// the selection — so the traffic pattern stays selection-
		// independent, and Infer's graceful degradation decides whether the
		// missing features matter.
		h.shortCircuit()
		return nil, total, st, fmt.Errorf("shard: shard %d (%s): %w", k, c.cfg.Addrs[k], ErrBreakerOpen)
	}
	attempts := 1 + c.cfg.Retries
	if probe {
		// The half-open probe is a single bounded attempt with no hedging:
		// its verdict alone decides whether the circuit closes or reopens
		// with doubled backoff.
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			lastErr = err
			break
		}
		if a > 0 {
			st.retries++
		}
		attemptCtx := ctx
		if probe {
			// Bound the probe: a black-holed host must not stall the
			// gather for the kernel connect timeout.
			var cancel context.CancelFunc
			attemptCtx, cancel = context.WithTimeout(ctx, c.cfg.ProbeTimeout)
			defer cancel()
		}
		res, t, hedged, err := c.exchangeOnce(attemptCtx, k, feats, probe, tc)
		st.hedged = st.hedged || hedged
		total.BytesUp += t.BytesUp
		total.BytesDown += t.BytesDown
		total.RoundTrip += t.RoundTrip
		// A response carrying the wrong feature count is a shard failure
		// like any other (a misconfigured or stale fleet member), and it
		// must count against the shard's health before success is
		// recorded — otherwise a persistently wrong shard would look
		// healthy forever.
		if err == nil && len(res.Features) != c.cfg.Ranges[k].Len() {
			err = fmt.Errorf("shard: shard %d returned %d features for %d hosted bodies", k, len(res.Features), c.cfg.Ranges[k].Len())
		}
		if err == nil {
			h.succeed()
			return res, total, st, nil
		}
		lastErr = err
	}
	// A caller-side cancellation or deadline says nothing about the
	// shard's health — charging it would open circuits on healthy shards
	// under an impatient client. An admitted half-open probe must still
	// hand its slot back, or the circuit wedges half-open with every
	// future request short-circuited.
	if ctx.Err() == nil {
		h.fail(lastErr)
	} else if probe {
		h.br.releaseProbe()
	}
	return nil, total, st, lastErr
}

// exchangeOnce performs a single (possibly hedged) exchange with shard k,
// reporting whether a hedge request was launched. Each attempt leg —
// primary and hedge alike — passes the shard's exchange fault site first.
func (c *Client) exchangeOnce(ctx context.Context, k int, feats *tensor.Tensor, probe bool, tc trace.Context) (*comm.Exchanged, comm.Timing, bool, error) {
	pool := c.pools[k]
	if c.cfg.HedgeAfter <= 0 || probe {
		if err := c.fps[k].Inject(); err != nil {
			return nil, comm.Timing{}, false, err
		}
		ex, t, err := pool.ExchangeTraced(ctx, feats, tc)
		return ex, t, false, err
	}
	type result struct {
		feats *comm.Exchanged
		t     comm.Timing
		err   error
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // aborts the losing request; its broken conn is discarded by the pool
	ch := make(chan result, 2)
	launch := func() {
		if err := c.fps[k].Inject(); err != nil {
			ch <- result{nil, comm.Timing{}, err}
			return
		}
		f, t, err := pool.ExchangeTraced(hctx, feats, tc)
		ch <- result{f, t, err}
	}
	go launch()
	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	outstanding := 1
	hedged := false
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil || outstanding == 0 {
				return r.feats, r.t, hedged, r.err
			}
			// The first responder failed but a hedge is still running —
			// wait for it rather than failing the attempt early.
		case <-timer.C:
			if !hedged {
				hedged = true
				outstanding++
				c.health[k].hedge()
				go launch()
			}
		}
	}
}
