package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"ensembler/internal/ensemble"
	"ensembler/internal/registry"
)

func TestKindFromName(t *testing.T) {
	for _, name := range []string{"cifar10", "cifar100", "celeba"} {
		if _, err := kindFromName(name); err != nil {
			t.Errorf("kindFromName(%q): %v", name, err)
		}
	}
	if _, err := kindFromName("mnist"); err == nil {
		t.Error("unknown workload must be rejected")
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-kind", "mnist"}, "unknown workload"},
		{[]string{"-n", "2", "-p", "3"}, "invalid ensemble shape"},
		{[]string{"-n", "0"}, "invalid ensemble shape"},
		{[]string{"-shards", "2"}, "requires -model-dir"},
		{[]string{"-model-dir", "d", "-n", "2", "-shards", "3"}, "invalid shard count"},
		{[]string{"stray"}, "unexpected arguments"},
		{[]string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		err := run(c.args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) = %v, want %q", c.args, err, c.want)
		}
	}
}

// tinyTrainArgs keeps the real three-stage training pipeline down to a few
// seconds: a 2-member ensemble, one epoch per stage, 32 samples.
func tinyTrainArgs(extra ...string) []string {
	return append([]string{
		"-n", "2", "-p", "1", "-train", "32",
		"-stage1-epochs", "1", "-stage3-epochs", "1", "-seed", "3",
	}, extra...)
}

func TestTrainPublishesShardedManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	dir := filepath.Join(t.TempDir(), "models")
	var out bytes.Buffer
	err := run(tinyTrainArgs("-model-dir", dir, "-model-name", "tiny", "-shards", "2"), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "published tiny v1") || !strings.Contains(out.String(), "2-shard fleet") {
		t.Errorf("publish banner missing: %s", out.String())
	}

	store, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	man, err := store.Manifest("tiny", 1)
	if err != nil {
		t.Fatal(err)
	}
	if man.N != 2 || man.P != 1 || man.Shards != 2 || len(man.ShardRanges) != 2 {
		t.Errorf("manifest did not record the fleet layout: %+v", man)
	}
	e, v, err := store.Load("tiny", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || e.Cfg.N != 2 || e.Cfg.P != 1 {
		t.Errorf("round-tripped pipeline wrong: v%d N=%d P=%d", v, e.Cfg.N, e.Cfg.P)
	}
}

func TestTrainSavesSingleFile(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	out := filepath.Join(t.TempDir(), "m.gob")
	var stdout bytes.Buffer
	if err := run(tinyTrainArgs("-out", out), &stdout, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "saved pipeline to") {
		t.Errorf("save banner missing: %s", stdout.String())
	}
	e, err := ensemble.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if e.Cfg.N != 2 || e.Cfg.P != 1 || len(e.Selector.Indices) != 1 {
		t.Errorf("loaded pipeline wrong: %+v", e.Cfg)
	}
}
