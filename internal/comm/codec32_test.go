package comm

import (
	"math"
	"testing"

	"ensembler/internal/nn"
	"ensembler/internal/tensor"
	"ensembler/internal/trace"
)

// directF32 computes what the f32 backend must produce for x32: every codec
// body compiled to Net32 and run on the exact same float32 input bits. The
// serving path — decode, arena staging, replica cloning, response copy-out —
// must reproduce these values bit for bit.
func directF32(t testing.TB, n int, x32 *tensor.Tensor32) []*tensor.Tensor32 {
	t.Helper()
	outs := make([]*tensor.Tensor32, n)
	for i, b := range codecBodies(n) {
		n32, err := nn.CompileF32(b)
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = n32.ForwardInfer(x32, nn.NewScratch32())
	}
	return outs
}

func newF32Server(n int) *Server {
	return NewServer(codecBodies(n), WithWorkers(2), WithPrecision(PrecisionF32),
		WithReplicas(func() []*nn.Network { return codecBodies(n) }))
}

// TestF32WireF32ComputeBitExact is the double-rounding regression test: a
// request on the f32 wire served by a PrecisionF32 server must answer with
// exactly the bits of the direct float32 computation — no intermediate f64
// round trip anywhere in decode → forward → encode. (The old failure mode:
// the f32 payload widened to f64, computed on the f64 kernels, and narrowed
// again on encode, rounding twice.)
func TestF32WireF32ComputeBitExact(t *testing.T) {
	const nBodies = 3
	srv := newF32Server(nBodies)
	x := wireTensor(31, 2, 4, 8, 8)
	want := directF32(t, nBodies, tensor.Narrow32(x))

	body, err := appendRequest(nil, &Request{Features: x}, true, trace.Context{})
	if err != nil {
		t.Fatal(err)
	}
	j := newJob()
	replicas := newReplicaCache(PrecisionF32)
	if err := parseRequestInto32(body, &j.req, j, nil); err != nil {
		t.Fatal(err)
	}
	resp := srv.serve(j, replicas)
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if !j.f32Resp {
		t.Fatal("f32-wire request on an f32 server did not take the f32 response path")
	}
	enc, err := appendResponse32(nil, j, resp, true, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got Response
	if err := parseResponseInto(enc, &got, true, nil); err != nil {
		t.Fatal(err)
	}
	if len(got.Features) != nBodies {
		t.Fatalf("response carries %d feature maps, want %d", len(got.Features), nBodies)
	}
	for b, w := range want {
		g := got.Features[b]
		if len(g.Data) != len(w.Data) {
			t.Fatalf("body %d: response shape %v, direct %v", b, g.Shape, w.Shape)
		}
		for k, v := range w.Data {
			// The client decodes the f32 wire by exact widening, so bitwise
			// f32 equality is float64 equality here.
			if math.Float64bits(g.Data[k]) != math.Float64bits(float64(v)) {
				t.Fatalf("body %d feature %d: served %v, direct f32 %v — a float64 conversion leaked into the f32 path",
					b, k, g.Data[k], v)
			}
		}
	}
}

// TestF32ServerF64IngressExact pins the one-rounding-step contract for the
// float64 dialects of a PrecisionF32 server: the input narrows exactly once
// (to the same bits the f32 wire would carry) and every result widens
// exactly, so an f64-wire or sync client sees precisely the direct float32
// computation — rounded nowhere further.
func TestF32ServerF64IngressExact(t *testing.T) {
	const nBodies = 3
	srv := newF32Server(nBodies)
	x := wireTensor(33, 2, 4, 8, 8)
	want := directF32(t, nBodies, tensor.Narrow32(x))

	// Binary f64 wire: the codec narrows at decode time.
	body, err := appendRequest(nil, &Request{Features: x}, false, trace.Context{})
	if err != nil {
		t.Fatal(err)
	}
	j := newJob()
	replicas := newReplicaCache(PrecisionF32)
	if err := parseRequestInto32(body, &j.req, j, nil); err != nil {
		t.Fatal(err)
	}
	resp := srv.serve(j, replicas)
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	enc, err := appendResponse32(nil, j, resp, false, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got Response
	if err := parseResponseInto(enc, &got, true, nil); err != nil {
		t.Fatal(err)
	}
	checkWidenedExact(t, "binary-f64", &got, want)

	// Sync/gob ingress: float64 tensors narrow at serve time instead of
	// decode time — same bits, same results.
	j2 := newJob()
	j2.req.Features = x
	resp2 := srv.serve(j2, newReplicaCache(PrecisionF32))
	if resp2.Err != "" {
		t.Fatal(resp2.Err)
	}
	checkWidenedExact(t, "sync", resp2, want)
}

func checkWidenedExact(t *testing.T, path string, got *Response, want []*tensor.Tensor32) {
	t.Helper()
	if len(got.Features) != len(want) {
		t.Fatalf("%s: response carries %d feature maps, want %d", path, len(got.Features), len(want))
	}
	for b, w := range want {
		g := got.Features[b]
		if len(g.Data) != len(w.Data) {
			t.Fatalf("%s body %d: response shape %v, direct %v", path, b, g.Shape, w.Shape)
		}
		for k, v := range w.Data {
			if math.Float64bits(g.Data[k]) != math.Float64bits(float64(v)) {
				t.Fatalf("%s body %d feature %d: served %v, direct f32 widens to %v",
					path, b, k, g.Data[k], float64(v))
			}
		}
	}
}

// TestF32BatchedWireBitExact extends the bit-exactness pin to the batched
// request form: stacked forward, per-input split, f32 response payload.
func TestF32BatchedWireBitExact(t *testing.T) {
	const nBodies = 2
	srv := newF32Server(nBodies)
	in0, in1 := wireTensor(35, 1, 4, 8, 8), wireTensor(36, 2, 4, 8, 8)
	// The server stacks the batch into one [3,C,H,W] pass; reproduce that
	// stacking on the narrowed bits.
	stacked := tensor.New(3, 4, 8, 8)
	copy(stacked.Data, in0.Data)
	copy(stacked.Data[in0.Size():], in1.Data)
	want := directF32(t, nBodies, tensor.Narrow32(stacked))

	body, err := appendRequest(nil, &Request{Inputs: []*tensor.Tensor{in0, in1}}, true, trace.Context{})
	if err != nil {
		t.Fatal(err)
	}
	j := newJob()
	if err := parseRequestInto32(body, &j.req, j, nil); err != nil {
		t.Fatal(err)
	}
	resp := srv.serve(j, newReplicaCache(PrecisionF32))
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	enc, err := appendResponse32(nil, j, resp, true, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got Response
	if err := parseResponseInto(enc, &got, true, nil); err != nil {
		t.Fatal(err)
	}
	if len(got.Outputs) != 2 {
		t.Fatalf("batched response carries %d rows, want 2", len(got.Outputs))
	}
	rows := []int{1, 2}
	off := 0
	for i, row := range got.Outputs {
		if len(row) != nBodies {
			t.Fatalf("input %d: %d body outputs, want %d", i, len(row), nBodies)
		}
		for b, g := range row {
			w := want[b]
			per := w.Size() / w.Shape[0]
			part := w.Data[off*per : (off+rows[i])*per]
			if len(g.Data) != len(part) {
				t.Fatalf("input %d body %d: %d values, want %d", i, b, len(g.Data), len(part))
			}
			for k, v := range part {
				if math.Float64bits(g.Data[k]) != math.Float64bits(float64(v)) {
					t.Fatalf("input %d body %d feature %d: served %v, direct f32 %v", i, b, k, g.Data[k], v)
				}
			}
		}
		off += rows[i]
	}
}

// TestServerComputeLoopZeroAllocsF32 pins the tentpole acceptance criterion
// for the float32 backend: the full f32 server loop — binary decode into the
// f32 arena, resolve, replica lookup (compiled Net32 bodies), every body
// pass, response copy-out, f32 encode — performs zero heap allocations at
// steady state, exactly like its f64 twin above.
func TestServerComputeLoopZeroAllocsF32(t *testing.T) {
	const nBodies = 3
	srv := newF32Server(nBodies)
	body, err := appendRequest(nil, &Request{Features: wireTensor(19, 2, 4, 8, 8)}, true, trace.Context{})
	if err != nil {
		t.Fatal(err)
	}
	j := newJob()
	replicas := newReplicaCache(PrecisionF32)
	encBuf := make([]byte, 0, 1<<16)
	cycle := func() {
		if err := parseRequestInto32(body, &j.req, j, nil); err != nil {
			t.Fatal(err)
		}
		resp := srv.serve(j, replicas)
		if resp.Err != "" {
			t.Fatal(resp.Err)
		}
		var e error
		encBuf, e = appendResponse32(append(encBuf[:0], 0, 0, 0, 0), j, resp, true, true, 0)
		if e != nil {
			t.Fatal(e)
		}
		j.reset()
	}
	cycle() // warm-up: compile replicas, size arenas and buffers
	cycle()
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Errorf("steady-state f32 server compute loop allocates %v times per request, want 0", allocs)
	}

	// The batched form reaches steady state too (after its own warm-up).
	batched, err := appendRequest(nil, &Request{Inputs: []*tensor.Tensor{
		wireTensor(20, 1, 4, 8, 8), wireTensor(21, 2, 4, 8, 8)}}, true, trace.Context{})
	if err != nil {
		t.Fatal(err)
	}
	body = batched
	cycle()
	cycle()
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Errorf("steady-state batched f32 compute loop allocates %v times per request, want 0", allocs)
	}
}

// BenchmarkServeRequestLoopF32 is BenchmarkServeRequestLoop on the float32
// backend — same request shape, same loop, f32 decode/compute/encode. CI runs
// both and gates the f32 loop at ≥1.2× the f64 requests/sec.
func BenchmarkServeRequestLoopF32(b *testing.B) {
	const nBodies = 4
	srv := newF32Server(nBodies)
	body, err := appendRequest(nil, &Request{Features: wireTensor(22, 4, 4, 8, 8)}, true, trace.Context{})
	if err != nil {
		b.Fatal(err)
	}
	j := newJob()
	replicas := newReplicaCache(PrecisionF32)
	encBuf := make([]byte, 0, 1<<20)
	for i := 0; i < 2; i++ {
		if err := parseRequestInto32(body, &j.req, j, nil); err != nil {
			b.Fatal(err)
		}
		if resp := srv.serve(j, replicas); resp.Err != "" {
			b.Fatal(resp.Err)
		}
		j.reset()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := parseRequestInto32(body, &j.req, j, nil); err != nil {
			b.Fatal(err)
		}
		resp := srv.serve(j, replicas)
		if resp.Err != "" {
			b.Fatal(resp.Err)
		}
		var e error
		encBuf, e = appendResponse32(append(encBuf[:0], 0, 0, 0, 0), j, resp, true, true, 0)
		if e != nil {
			b.Fatal(e)
		}
		j.reset()
	}
}
