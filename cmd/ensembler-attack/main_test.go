package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"ensembler/internal/data"
	"ensembler/internal/ensemble"
	"ensembler/internal/split"
)

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-kind", "mnist", "-model", "x.gob"}, "unknown workload"},
		{[]string{"stray"}, "unexpected arguments"},
		{[]string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		err := run(c.args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) = %v, want %q", c.args, err, c.want)
		}
	}
}

func TestRunMissingModel(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.gob")
	err := run([]string{"-model", missing}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "loading model") {
		t.Errorf("missing model: %v", err)
	}
}

func TestRunAttacksSavedPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("attack smoke test")
	}
	// An untrained pipeline costs exactly as much to attack as a trained
	// one; the smoke test only needs the command to run end to end.
	e := ensemble.New(ensemble.Config{
		Arch: split.DefaultArch(data.CIFAR10Like), N: 2, P: 1, Sigma: 0.05, Seed: 9, Stage1Noise: true,
	})
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-model", path, "-aux", "16", "-eval", "4", "-shadow-epochs", "1"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"attacking", "strongest single-body", "adaptive", "brute-force subset space: 3 candidates"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
