package comm

import (
	"context"
	"encoding/gob"
	"net"
	"testing"

	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// TestLocalClientOverPipe exercises the client protocol over an in-memory
// net.Pipe with a hand-rolled server loop — no TCP, no training, pure
// protocol mechanics.
func TestLocalClientOverPipe(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	defer clientEnd.Close()

	arch := tinyArch()
	body := arch.NewBody("b", rng.New(1))
	srv := NewServer([]*nn.Network{body})
	go func() {
		defer serverEnd.Close()
		dec := gob.NewDecoder(serverEnd)
		enc := gob.NewEncoder(serverEnd)
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		_ = enc.Encode(srv.process(&req))
	}()

	client := NewLocalClient(clientEnd)
	client.ComputeFeatures = func(x *tensor.Tensor) *tensor.Tensor {
		// Identity "head": the protocol doesn't care what computes features.
		return x
	}
	client.Select = func(features []*tensor.Tensor) *tensor.Tensor { return features[0] }
	client.Tail = nn.NewNetwork("t", nn.NewLinear("fc", arch.FeatureDim(), arch.Classes, rng.New(2)))

	x := tensor.New(2, arch.HeadC, 8, 8)
	rng.New(3).FillNormal(x.Data, 0, 1)
	logits, timing, err := client.Infer(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if logits.Shape[0] != 2 || logits.Shape[1] != arch.Classes {
		t.Fatalf("logits shape %v", logits.Shape)
	}
	if timing.BytesUp == 0 || timing.BytesDown == 0 {
		t.Error("pipe byte accounting missing")
	}
}
