module ensembler

go 1.24
