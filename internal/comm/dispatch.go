package comm

// Continuous batching across connections: the dispatcher owns a bounded
// intake of decoded requests, coalesces compatible ones — same model epoch,
// same feature geometry — arriving on *different* connections into one
// stacked forward pass, and sheds load with an honest 429-style response
// (ErrOverloaded) when the intake is full instead of queueing without
// bound. This is the server-side half of §III-D's batch amortization: a
// client no longer has to pack B inputs into one request to buy the
// batched rate; B clients each sending one input buy it together.
//
// Design constraints, in order:
//
//  1. Bounded memory. Admission control runs at submit time under one
//     mutex; depth can never exceed maxQueue, and the shed path reuses the
//     job's own response storage (no allocation under overload — the one
//     regime where allocating is most dangerous).
//  2. Fairness. Requests queue per connection and batches are collected
//     round-robin, one job per connection per pass, so a pipelining
//     firehose cannot monopolize a batch. When the intake is full, the
//     victim is the newest request of the *longest* queue — the client
//     responsible for the overload — and only if the submitter's own queue
//     is at least as long is the newcomer itself shed.
//  3. The zero-allocation steady state of the PR 5 request loop. Batches
//     recycle through a free list; the stacked input lives in the batch's
//     arena, per-job outputs in each job's arena (reset by its connection
//     writer, exactly as in the un-coalesced path).
//
// The batch window (WithBatchWindow) trades latency for occupancy: the
// batcher sleeps the window after seeing a batch's first job, letting
// co-arrivals accumulate. Window zero still coalesces whatever is already
// queued — greedy batching plus admission control, no added latency.

import (
	"sync"
	"sync/atomic"
	"time"

	"ensembler/internal/tensor"
	"ensembler/internal/trace"
)

// DefaultMaxQueue bounds the dispatcher intake when WithBatchWindow enables
// continuous batching without an explicit WithMaxQueue.
const DefaultMaxQueue = 256

// maxBatchWindow caps WithBatchWindow: the window must stay well under the
// shutdown drain timeout (queued jobs ride out at most one window during a
// graceful drain) and a longer window is a latency bug, not a throughput
// feature.
const maxBatchWindow = time.Second

// overloadedMsg is the shed response's error text — a constant so the
// admission-control path performs no allocation. The Code field carries the
// machine-readable verdict.
const overloadedMsg = "server overloaded: intake queue full, request shed; retry with backoff"

// coalesceKey identifies the requests that may share one stacked forward
// pass: same routing header (hence same resolved epoch) and same per-row
// feature geometry. Row counts may differ — stacking concatenates along the
// batch axis exactly like a client-batched request.
type coalesceKey struct {
	model   string
	version int
	c, h, w int
	// f32 marks jobs decoded into float32 storage, so a batch is homogeneous
	// in decode precision and the stacked pass never mixes arenas.
	f32 bool
}

// jobKey classifies a decoded request for coalescing. Only single-tensor
// feature requests of plausible rank participate; client-batched requests
// (Inputs) and malformed shapes dispatch as singleton batches and take the
// ordinary serve path, which owns their validation and error text.
func jobKey(j *job) (coalesceKey, bool) {
	if f := j.feat32; f != nil {
		if len(f.Shape) != 4 {
			return coalesceKey{}, false
		}
		return coalesceKey{model: j.req.Model, version: j.req.Version, c: f.Shape[1], h: f.Shape[2], w: f.Shape[3], f32: true}, true
	}
	f := j.req.Features
	if f == nil || len(f.Shape) != 4 {
		return coalesceKey{}, false
	}
	return coalesceKey{model: j.req.Model, version: j.req.Version, c: f.Shape[1], h: f.Shape[2], w: f.Shape[3]}, true
}

// connQueue is one connection's FIFO of admitted jobs. head indexes the
// next job out; the backing slice compacts when drained so steady state
// reuses one allocation per connection.
type connQueue struct {
	jobs []*job
	head int
}

func (q *connQueue) depth() int { return len(q.jobs) - q.head }

func (q *connQueue) push(j *job) { q.jobs = append(q.jobs, j) }

func (q *connQueue) peek() *job { return q.jobs[q.head] }

func (q *connQueue) pop() *job {
	j := q.jobs[q.head]
	q.jobs[q.head] = nil
	q.head++
	if q.head == len(q.jobs) {
		q.jobs = q.jobs[:0]
		q.head = 0
	}
	return j
}

// dropNewest sheds from the tail — the requests that arrived after the
// queue was already deep — preserving FIFO order for what remains.
func (q *connQueue) dropNewest() *job {
	j := q.jobs[len(q.jobs)-1]
	q.jobs[len(q.jobs)-1] = nil
	q.jobs = q.jobs[:len(q.jobs)-1]
	if q.head == len(q.jobs) {
		q.jobs = q.jobs[:0]
		q.head = 0
	}
	return j
}

// dispatchBatch is one coalesced unit of work: the jobs it answers, the
// arena backing the stacked input, and the reusable bookkeeping slices.
// Batches recycle through the dispatcher's free list.
type dispatchBatch struct {
	jobs []*job
	rows []int // per-job stacked row count; -1 marks a job failed validation
	outs []*tensor.Tensor
	// arena backs the stacked input tensor; reset when the batch recycles
	// (the forward outputs live in worker scratches and the per-job copies
	// in each job's arena, so nothing outlives the reset).
	arena tensor.Arena
	// Float32 twins of the above, used by a PrecisionF32 server's stacked
	// pass (see coalescedPass32).
	outs32  []*tensor.Tensor32
	arena32 tensor.Arena32
}

func (b *dispatchBatch) reset() {
	for i := range b.jobs {
		b.jobs[i] = nil
	}
	b.jobs = b.jobs[:0]
	b.rows = b.rows[:0]
	b.outs = b.outs[:0]
	b.arena.Reset()
	b.outs32 = b.outs32[:0]
	b.arena32.Reset()
}

// dispatcher is the continuous-batching intake: per-connection bounded
// queues, a single batcher goroutine collecting round-robin batches, and
// admission control that sheds with ErrOverloaded at the bound.
type dispatcher struct {
	window      time.Duration
	maxQueue    int
	maxCoalesce int
	metrics     *ServerMetrics // nil: stats only, no telemetry
	tracer      *trace.Tracer  // nil: no per-stage attribution

	mu     sync.Mutex
	queues []*connQueue
	rr     int // round-robin start for the next batch
	depth  int
	peak   int

	// wake holds at most one token: submit signals, the batcher drains.
	wake chan struct{}
	free chan *dispatchBatch

	sheds        atomic.Uint64
	batches      atomic.Uint64
	coalesced    atomic.Uint64
	maxCoalesced atomic.Uint64
}

func newDispatcher(window time.Duration, maxQueue, maxCoalesce int, m *ServerMetrics, tr *trace.Tracer) *dispatcher {
	return &dispatcher{
		window:      window,
		maxQueue:    maxQueue,
		maxCoalesce: maxCoalesce,
		metrics:     m,
		tracer:      tr,
		wake:        make(chan struct{}, 1),
		free:        make(chan *dispatchBatch, 16),
	}
}

// register adds a connection's queue to the round-robin ring.
func (d *dispatcher) register() *connQueue {
	q := &connQueue{}
	d.mu.Lock()
	d.queues = append(d.queues, q)
	d.mu.Unlock()
	return q
}

// unregister removes a connection's queue. The handler calls it only after
// its writer drained every reply, so the queue is empty by construction.
func (d *dispatcher) unregister(q *connQueue) {
	d.mu.Lock()
	for i, cand := range d.queues {
		if cand == q {
			last := len(d.queues) - 1
			d.queues[i] = d.queues[last]
			d.queues[last] = nil
			d.queues = d.queues[:last]
			break
		}
	}
	if len(d.queues) > 0 {
		d.rr %= len(d.queues)
	} else {
		d.rr = 0
	}
	d.mu.Unlock()
}

// submit admits j into q or sheds under overload, replying on the job's own
// channel either way — the caller never blocks and never handles the job
// again. The shed victim is chosen for fairness: the newest job of the
// longest queue when that queue is strictly deeper than the submitter's,
// otherwise the newcomer itself (which covers "the submitter IS the
// firehose").
func (d *dispatcher) submit(q *connQueue, j *job) {
	// Fault site: a forced shed exercises the honest-429 path — the job is
	// answered with CodeOverloaded exactly as under real admission pressure.
	if fpDispatch.Inject() != nil {
		d.shed(j)
		return
	}
	var victim *job
	d.mu.Lock()
	if d.depth >= d.maxQueue {
		longest := q
		for _, cand := range d.queues {
			if cand.depth() > longest.depth() {
				longest = cand
			}
		}
		if longest != q && longest.depth() > q.depth() {
			victim = longest.dropNewest()
			d.depth--
		} else {
			d.mu.Unlock()
			d.shed(j)
			return
		}
	}
	d.depth++
	if d.depth > d.peak {
		d.peak = d.depth
	}
	q.push(j)
	d.mu.Unlock()
	if victim != nil {
		d.shed(victim)
	}
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// shed answers a job with the honest 429: constant error text, the
// CodeOverloaded verdict, no allocation. The reply channel is buffered and
// the job is not computing, so the send cannot block.
func (d *dispatcher) shed(j *job) {
	d.sheds.Add(1)
	if m := d.metrics; m != nil {
		m.Requests.Inc()
		m.Errors.Inc()
		m.Shed.Inc()
	}
	// The terminal shed span: its duration is the time the request sat
	// queued before admission control picked it as the victim. MarkShed
	// makes tail-sampling retention unconditional, so every shed is
	// explainable after the fact. Like the response itself, the span costs
	// no allocation — overload is the regime where allocating is most
	// dangerous.
	if tr := d.tracer; tr != nil {
		j.tr.MarkShed()
		now := time.Now()
		var wait time.Duration
		if !j.queuedAt.IsZero() {
			wait = now.Sub(j.queuedAt)
			j.queuedAt = time.Time{}
		}
		tr.Span(&j.tr, trace.StageShed, now.Add(-wait), wait)
	}
	j.resp = Response{Err: overloadedMsg, Code: CodeOverloaded}
	j.reply <- &j.resp
}

// queued reports the current intake depth.
func (d *dispatcher) queued() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.depth
}

// run is the batcher: it waits for intake, lets the window elapse so
// co-arrivals can join, collects one round-robin batch, and hands it to the
// worker pool. Serve stops it only after every handler drained, so the
// intake is empty when stop fires and no job can be stranded.
func (d *dispatcher) run(batches chan<- *dispatchBatch, stop <-chan struct{}) {
	for {
		if d.queued() == 0 {
			select {
			case <-d.wake:
			case <-stop:
				return
			}
			continue // re-check: the token may predate a batch that already drained the queue
		}
		// The window opens when the batcher first sees work and closes
		// unconditionally: a fixed, predictable latency cost that the
		// queueing model (latency.EstimateContinuousBatching) prices.
		var windowOpen time.Time
		if d.tracer != nil {
			windowOpen = time.Now()
		}
		if d.window > 0 && d.queued() < d.maxCoalesce {
			time.Sleep(d.window)
		}
		b := d.takeBatch(windowOpen)
		if b == nil {
			continue
		}
		d.batches.Add(1)
		n := uint64(len(b.jobs))
		d.coalesced.Add(n)
		for {
			cur := d.maxCoalesced.Load()
			if n <= cur || d.maxCoalesced.CompareAndSwap(cur, n) {
				break
			}
		}
		batches <- b
	}
}

// takeBatch collects the next batch: the head job of the first non-empty
// queue at the round-robin cursor seeds it, then passes over all queues —
// one job per queue per pass, fairness before fullness — take every queued
// job matching the seed's coalesce key, up to maxCoalesce. Non-coalescible
// seeds (client-batched requests, odd shapes) dispatch alone. windowOpen,
// when nonzero, is the instant the batcher first saw work this round — the
// boundary that splits each popped job's wait into intake-queue time
// (before the window opened) and batch-window time (the deliberate
// coalescing delay).
func (d *dispatcher) takeBatch(windowOpen time.Time) *dispatchBatch {
	b := d.getBatch()
	d.mu.Lock()
	n := len(d.queues)
	if n == 0 || d.depth == 0 {
		d.mu.Unlock()
		d.putBatch(b)
		return nil
	}
	seedAt := -1
	for i := 0; i < n; i++ {
		q := d.queues[(d.rr+i)%n]
		if q.depth() > 0 {
			seedAt = (d.rr + i) % n
			b.jobs = append(b.jobs, q.pop())
			d.depth--
			break
		}
	}
	if seedAt < 0 {
		d.mu.Unlock()
		d.putBatch(b)
		return nil
	}
	d.rr = (seedAt + 1) % n
	key, ok := jobKey(b.jobs[0])
	if ok {
		for progress := true; progress && len(b.jobs) < d.maxCoalesce; {
			progress = false
			for i := 0; i < n && len(b.jobs) < d.maxCoalesce; i++ {
				q := d.queues[(d.rr+i)%n]
				if q.depth() == 0 {
					continue
				}
				if k, ok := jobKey(q.peek()); !ok || k != key {
					continue
				}
				b.jobs = append(b.jobs, q.pop())
				d.depth--
				progress = true
			}
		}
	}
	d.mu.Unlock()
	// Attribute each popped job's wait outside the lock (the jobs now belong
	// to this batch; nothing races their Active until the reply). The time
	// since the job queued splits at windowOpen: before it, intake-queue
	// wait; after it, the deliberate batch-window delay. queuedAt is zeroed
	// so serve() does not double-count the queue leg for singleton batches.
	if tr := d.tracer; tr != nil {
		now := time.Now()
		for _, j := range b.jobs {
			if j.queuedAt.IsZero() {
				continue
			}
			total := now.Sub(j.queuedAt)
			if total < 0 {
				total = 0
			}
			var windowShare time.Duration
			if !windowOpen.IsZero() && windowOpen.After(j.queuedAt) {
				windowShare = now.Sub(windowOpen)
			} else if !windowOpen.IsZero() {
				windowShare = total
			}
			if windowShare > total {
				windowShare = total
			}
			if windowShare < 0 {
				windowShare = 0
			}
			queueShare := total - windowShare
			tr.Span(&j.tr, trace.StageQueue, j.queuedAt, queueShare)
			if windowShare > 0 {
				tr.Span(&j.tr, trace.StageBatchWait, j.queuedAt.Add(queueShare), windowShare)
			}
			j.queuedAt = time.Time{}
		}
	}
	return b
}

func (d *dispatcher) getBatch() *dispatchBatch {
	select {
	case b := <-d.free:
		return b
	default:
		return &dispatchBatch{}
	}
}

func (d *dispatcher) putBatch(b *dispatchBatch) {
	b.reset()
	select {
	case d.free <- b:
	default: // free list full; let it be collected
	}
}

// DispatcherStats is a point-in-time snapshot of the continuous-batching
// intake — the numbers behind the ensembler_dispatch_* telemetry series and
// what the race suite asserts cross-connection coalescing against.
type DispatcherStats struct {
	// Enabled reports whether the server runs a dispatcher at all.
	Enabled bool
	// Depth is the current intake depth; PeakDepth its high-water mark.
	// PeakDepth ≤ MaxQueue is the bounded-queue invariant.
	Depth, PeakDepth, MaxQueue int
	// Window is the configured batch window.
	Window time.Duration
	// Sheds counts requests answered with ErrOverloaded by admission
	// control. Batches counts dispatched batches (singletons included);
	// CoalescedJobs the jobs carried by multi-job batches, so
	// CoalescedJobs/Batches understates and MaxCoalesced witnesses the
	// occupancy the histogram records in full.
	Sheds, Batches, CoalescedJobs uint64
	// MaxCoalesced is the largest batch dispatched so far.
	MaxCoalesced int
}

// DispatcherStats reports the dispatcher's counters; the zero value (with
// Enabled false) when the server was built without continuous batching.
func (s *Server) DispatcherStats() DispatcherStats {
	d := s.dispatcher
	if d == nil {
		return DispatcherStats{}
	}
	d.mu.Lock()
	depth, peak := d.depth, d.peak
	d.mu.Unlock()
	return DispatcherStats{
		Enabled:       true,
		Depth:         depth,
		PeakDepth:     peak,
		MaxQueue:      d.maxQueue,
		Window:        d.window,
		Sheds:         d.sheds.Load(),
		Batches:       d.batches.Load(),
		CoalescedJobs: d.coalesced.Load(),
		MaxCoalesced:  int(d.maxCoalesced.Load()),
	}
}

// serveBatch answers every job of one dispatched batch on the worker's
// replica cache: singletons take the ordinary serve path untouched;
// coalesced batches resolve once, stack, forward once, and split. Replies
// are sent only after metrics record — a replied job belongs to its
// connection writer, which recycles it.
func (s *Server) serveBatch(b *dispatchBatch, replicas *replicaCache) {
	if len(b.jobs) == 1 {
		j := b.jobs[0]
		j.reply <- s.serve(j, replicas)
		return
	}
	if m := s.opts.metrics; m != nil {
		m.CoalescedBatch.Observe(float64(len(b.jobs)))
	}
	tr := s.opts.tracer
	var start time.Time
	if s.opts.metrics != nil || tr != nil {
		start = time.Now()
	}
	s.serveCoalesced(b, replicas)
	if s.opts.metrics != nil || tr != nil {
		dur := time.Since(start)
		for _, j := range b.jobs {
			if m := s.opts.metrics; m != nil {
				m.record(j, &j.resp, dur)
			}
			// Every member is attributed the shared pass; Arg records how
			// many requests bought it together.
			tr.SpanArg(&j.tr, trace.StageForward, int32(len(b.jobs)), start, dur)
		}
	}
	for _, j := range b.jobs {
		j.reply <- &j.resp
	}
}

// failBatch writes one error onto every job that has no response yet.
func failBatch(b *dispatchBatch, msg string) {
	for _, j := range b.jobs {
		if j.resp.Err == "" && j.resp.Features == nil && j.resp.Outputs == nil && !j.f32Resp {
			j.resp = Response{Err: msg}
		}
	}
}

// serveCoalesced computes one stacked forward pass for a multi-job batch,
// filling each job's resp in place. Invalid members (shapes that clear the
// coalesce key but fail full validation) get their own error response and
// are excluded from the stack; a panic mid-pass fails the whole batch with
// error responses, never the server.
func (s *Server) serveCoalesced(b *dispatchBatch, replicas *replicaCache) {
	defer func() {
		if r := recover(); r != nil {
			failBatch(b, "comm: request failed: batched pass panicked")
		}
	}()
	// Budget verdicts come before anything else: a refused member carries
	// its refusal response from here on and is excluded from observation,
	// the stack, and the split (its rows marker goes to -1 below, exactly
	// like a validation failure).
	if s.opts.guard != nil {
		for _, j := range b.jobs {
			s.chargeJob(j)
		}
	}
	head := &b.jobs[0].req
	m, err := s.provider.Resolve(head.Model, head.Version)
	if err != nil {
		failBatch(b, err.Error())
		return
	}
	if s.opts.observer != nil {
		for _, j := range b.jobs {
			if j.resp.Err == "" {
				observeJob(s.opts.observer, m.Name(), m.Version(), j)
			}
		}
	}
	wr, err := replicas.replicaFor(m)
	if err != nil {
		failBatch(b, err.Error())
		return
	}
	if s.opts.precision == PrecisionF32 {
		s.coalescedPass32(b, wr, m)
		return
	}
	// Validate members and size the stack. The coalesce key fixed [C,H,W];
	// rows vary per job.
	total := 0
	rows := b.rows[:0]
	for _, j := range b.jobs {
		if j.resp.Err != "" { // refused by the budget guard above
			rows = append(rows, -1)
			continue
		}
		if err := validateFeatures(j.req.Features); err != nil {
			j.resp = Response{Err: err.Error()}
			rows = append(rows, -1)
			continue
		}
		r := j.req.Features.Shape[0]
		rows = append(rows, r)
		total += r
	}
	b.rows = rows
	if total == 0 {
		return // every member was refused or failed validation; each carries its own error
	}
	stacked := b.arena.NewTensor(total, head.Features.Shape[1], head.Features.Shape[2], head.Features.Shape[3])
	off := 0
	for i, j := range b.jobs {
		if b.rows[i] < 0 {
			continue
		}
		off += copy(stacked.Data[off:], j.req.Features.Data)
	}
	outs := s.forwardBodies(&b.outs, wr, stacked)
	// Split each body's stacked output back per job, copying into the
	// job's own arena — after this, nothing ties a job to the batch.
	row := 0
	for i, j := range b.jobs {
		if b.rows[i] < 0 {
			continue
		}
		r := b.rows[i]
		feats := j.feats[:0]
		for _, out := range outs {
			per := out.Size() / out.Shape[0]
			shape := append(j.shape[:0], r)
			shape = append(shape, out.Shape[1:]...)
			part := j.arena.NewTensor(shape...)
			copy(part.Data, out.Data[row*per:(row+r)*per])
			feats = append(feats, part)
		}
		j.feats = feats
		j.resp = Response{Features: feats, Model: m.Name(), Version: m.Version()}
		if j.noiseSigma > 0 {
			noiseResponse(j, &j.resp)
		}
		row += r
	}
}
