// Latency study: regenerates the paper's Table III from the analytic cost
// model (full ResNet-18, batch of 128, Raspberry-Pi-class client + A6000-
// class server + wired LAN), then sweeps server parallelism to demonstrate
// the §III-D claim that Ensembler's O(N) server cost parallelizes away, and
// ensemble size to show how communication grows with N.
//
//	go run ./examples/latency_sim
package main

import (
	"fmt"

	"ensembler/internal/flops"
	"ensembler/internal/latency"
)

func main() {
	spec := flops.ResNet18(32, 10, true)
	fmt.Printf("ResNet-18 @32px: head %.1f MFLOPs | body %.1f MFLOPs | tail %.3f MFLOPs per image\n",
		spec.HeadFLOPs()/1e6, spec.BodyFLOPs()/1e6, spec.TailFLOPs()/1e6)
	fmt.Printf("transmitted feature: %.0f KiB/image ([64,16,16] float32, as in the paper)\n\n",
		spec.FeatureBytes()/1024)

	fmt.Println("Table III — time (s) for a batch of 128 images")
	for _, row := range latency.TableIII(10) {
		fmt.Println(row)
	}
	fmt.Printf("Ensembler overhead vs Standard CI: %.1f%%  (paper: 4.8%%)\n\n", latency.OverheadPercent(10))

	fmt.Println("§III-D — the O(N) server cost parallelizes:")
	for _, row := range latency.ParallelismSweep(10, []int{1, 2, 5, 10}) {
		fmt.Println(row)
	}
	fmt.Println()

	fmt.Println("scaling the ensemble (full parallelism):")
	for _, n := range []int{1, 5, 10, 20, 40} {
		sc := latency.Ensembler(n)
		sc.Server.Parallelism = n
		b := latency.Run(sc)
		fmt.Printf("N=%-3d total %.2fs (comm %.2fs)\n", n, b.Total(), b.Communication)
	}
	fmt.Println()

	// How often can the registry rotate the secret selector before the
	// hot-swap overhead (each worker lazily re-cloning its body replicas)
	// bites into saturated throughput? Priced at a pessimistic 1 s clone.
	fmt.Println("selector-rotation cadence vs saturated throughput (64 clients, 4 workers, 1s clone):")
	for _, row := range latency.RotationSweep(latency.Ensembler(10), 4, 64, 1, 1.0, []float64{5, 30, 60, 600, 3600}) {
		fmt.Println(row)
	}
}
