// Command ensembler-bench regenerates the paper's evaluation tables from
// the command line:
//
//	ensembler-bench -table 1              # Table I (defense quality, 3 datasets)
//	ensembler-bench -table 2              # Table II (defense battery, CIFAR-10-like)
//	ensembler-bench -table 3              # Table III (latency model)
//	ensembler-bench -table all -scale paper
//	ensembler-bench -claims               # §IV headline percentages
package main

import (
	"flag"
	"fmt"
	"os"

	"ensembler/internal/experiments"
	"ensembler/internal/latency"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2, 3, or all")
	scaleName := flag.String("scale", "small", "experiment scale: small or paper")
	seed := flag.Int64("seed", 42, "experiment seed")
	n := flag.Int("n", 10, "ensemble size for the latency model (Table III)")
	claims := flag.Bool("claims", false, "also print the paper's §IV headline claims")
	verbose := flag.Bool("v", false, "log training progress")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleName {
	case "small":
		sc = experiments.Small()
	case "paper":
		sc = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small or paper)\n", *scaleName)
		os.Exit(2)
	}
	var log *os.File
	if *verbose {
		log = os.Stderr
	}

	runI := *table == "1" || *table == "all"
	runII := *table == "2" || *table == "all" || *claims
	runIII := *table == "3" || *table == "all"
	if !runI && !runII && !runIII {
		fmt.Fprintf(os.Stderr, "unknown table %q (want 1, 2, 3, or all)\n", *table)
		os.Exit(2)
	}

	if runI {
		for _, blk := range experiments.TableI(sc, *seed, log) {
			experiments.RenderRows(os.Stdout,
				fmt.Sprintf("\nTable I — %s (N=%d, P=%d)", blk.Kind, sc.N, blk.P), blk.Rows)
		}
	}
	if runII {
		rows := experiments.TableII(sc, *seed+1, log)
		experiments.RenderRows(os.Stdout, "\nTable II — defense mechanisms, cifar10-like", rows)
		if *claims {
			rep := experiments.ComputeClaims(rows, sc.N)
			fmt.Printf("\n§IV claims (paper → measured):\n")
			fmt.Printf("  SSIM decrease vs Single:  43.5%% → %.1f%%\n", rep.SSIMDropVsSingle)
			fmt.Printf("  PSNR decrease vs Single:  40.5%% → %.1f%%\n", rep.PSNRDropVsSingle)
			fmt.Printf("  latency overhead:          4.8%% → %.1f%%\n", rep.LatencyOverhead)
		}
	}
	if runIII {
		fmt.Println()
		experiments.RenderTableIII(os.Stdout, experiments.TableIII(*n))
		fmt.Printf("Ensembler overhead vs Standard CI: %.1f%% (paper: 4.8%%)\n", latency.OverheadPercent(*n))
	}
}
