package nn

import (
	"fmt"

	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// NoiseMode selects how an AdditiveNoise layer produces its perturbation.
type NoiseMode int

const (
	// NoiseFixed adds a noise tensor drawn once at construction time and
	// broadcast over the batch — the paper's predefined N(0,σ) added after
	// the client head (Stages 1 and 3).
	NoiseFixed NoiseMode = iota
	// NoiseResample draws fresh Gaussian noise on every forward pass — the
	// classic DP-style perturbation baseline ("Single" [30] uses a fixed
	// tensor; resampling is provided for ablations).
	NoiseResample
	// NoiseTrainable exposes the noise tensor as a trainable parameter —
	// the Shredder-style learned noise baseline.
	NoiseTrainable
)

// AdditiveNoise perturbs intermediate feature maps of shape [C,H,W]
// (broadcast over the batch). The gradient passes through unchanged; in
// trainable mode the noise tensor also accumulates its own gradient.
type AdditiveNoise struct {
	Mode  NoiseMode
	Sigma float64
	Noise *Param // the [C,H,W] noise tensor (fixed or trainable)
	r     *rng.RNG
	batch int
}

// NewAdditiveNoise creates a noise layer for feature maps of shape [c,h,w]
// with standard deviation sigma, drawing from r.
func NewAdditiveNoise(name string, mode NoiseMode, c, h, w int, sigma float64, r *rng.RNG) *AdditiveNoise {
	noise := tensor.New(c, h, w)
	r.FillNormal(noise.Data, 0, sigma)
	return &AdditiveNoise{Mode: mode, Sigma: sigma, Noise: NewParam(name+".noise", noise), r: r}
}

// Forward adds the noise tensor to every sample in the batch.
func (a *AdditiveNoise) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: AdditiveNoise expects NCHW, got %v", x.Shape))
	}
	per := a.Noise.Value.Size()
	if x.Size()/x.Shape[0] != per {
		panic(fmt.Sprintf("nn: AdditiveNoise shape %v incompatible with input %v", a.Noise.Value.Shape, x.Shape))
	}
	if a.Mode == NoiseResample {
		a.r.FillNormal(a.Noise.Value.Data, 0, a.Sigma)
	}
	a.batch = x.Shape[0]
	out := x.Clone()
	for n := 0; n < a.batch; n++ {
		base := n * per
		for j := 0; j < per; j++ {
			out.Data[base+j] += a.Noise.Value.Data[j]
		}
	}
	return out
}

// Backward passes the gradient through; in trainable mode it also sums the
// batch gradient into the noise parameter.
func (a *AdditiveNoise) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if a.Mode == NoiseTrainable {
		per := a.Noise.Value.Size()
		for n := 0; n < a.batch; n++ {
			base := n * per
			for j := 0; j < per; j++ {
				a.Noise.Grad.Data[j] += grad.Data[base+j]
			}
		}
	}
	return grad
}

// Params exposes the noise tensor only in trainable mode; fixed noise is a
// pipeline constant, not something the optimizer may touch.
func (a *AdditiveNoise) Params() []*Param {
	if a.Mode == NoiseTrainable {
		return []*Param{a.Noise}
	}
	return nil
}

// Dropout zeroes a fraction P of activations during training and rescales
// the survivors by 1/(1-P); it is the DR-single / DR-N defense of He et al.
// (IoT-J 2021) in the ablation table.
type Dropout struct {
	P    float64
	r    *rng.RNG
	mask []float64
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(p float64, r *rng.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0,1)", p))
	}
	return &Dropout{P: p, r: r}
}

// Forward applies a fresh mask in training mode and is the identity in eval
// mode.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]float64, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	scale := 1 / (1 - d.P)
	out := x.Clone()
	for i := range out.Data {
		if d.r.Float64() < d.P {
			d.mask[i] = 0
			out.Data[i] = 0
		} else {
			d.mask[i] = scale
			out.Data[i] *= scale
		}
	}
	return out
}

// Backward applies the cached mask (identity if the last forward was eval).
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	out := grad.Clone()
	for i := range out.Data {
		out.Data[i] *= d.mask[i]
	}
	return out
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
