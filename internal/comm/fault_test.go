package comm

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"ensembler/internal/faultpoint"
	"ensembler/internal/nn"
	"ensembler/internal/trace"
)

// testMidFrameFaultReconnects drives a pooled client through a server whose
// response write is torn mid-frame by the given fault kind, and pins the
// recovery contract: the faulted exchange fails (a torn frame is a transport
// error, not a retryable shed), the pool discards the desynced connection,
// and the next exchange succeeds bit-exactly over a fresh dial — never by
// reusing the poisoned stream.
func testMidFrameFaultReconnects(t *testing.T, kind faultpoint.Kind, opts ...DialOption) {
	defer faultpoint.DisableAll()
	addr := startServer(t, codecBodies(2))
	pool, err := NewPool(addr, 1, func(c *Client) error { return nil }, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	x := wireTensor(600, 1, 4, 8, 8)
	want, _, err := pool.Exchange(context.Background(), x)
	if err != nil {
		t.Fatalf("baseline exchange: %v", err)
	}
	if len(want.Features) != 2 {
		t.Fatalf("baseline returned %d features, want 2", len(want.Features))
	}

	faultpoint.Enable("comm/frame-write", faultpoint.Policy{Kind: kind, Count: 1, Frac: 0.5})
	if _, _, err := pool.Exchange(context.Background(), x); err == nil {
		t.Fatal("mid-frame write fault did not surface as an exchange error")
	} else if errors.Is(err, ErrOverloaded) {
		t.Fatalf("torn frame misclassified as a benign shed: %v", err)
	}

	// The pool must have discarded the broken connection; this exchange
	// rides a fresh dial and must be bit-exact with the baseline.
	got, _, err := pool.Exchange(context.Background(), x)
	if err != nil {
		t.Fatalf("exchange after reconnect: %v", err)
	}
	for i := range want.Features {
		if !got.Features[i].AllClose(want.Features[i], 0) {
			t.Fatalf("feature %d differs after reconnect — desynced stream reuse", i)
		}
	}
}

func TestPoolReconnectsAfterMidFramePartialWriteBinary(t *testing.T) {
	testMidFrameFaultReconnects(t, faultpoint.PartialWrite)
}

func TestPoolReconnectsAfterMidFrameConnResetBinary(t *testing.T) {
	testMidFrameFaultReconnects(t, faultpoint.ConnReset)
}

func TestPoolReconnectsAfterMidFramePartialWriteGob(t *testing.T) {
	testMidFrameFaultReconnects(t, faultpoint.PartialWrite, WithWire(WireGob))
}

func TestPoolReconnectsAfterMidFrameConnResetGob(t *testing.T) {
	testMidFrameFaultReconnects(t, faultpoint.ConnReset, WithWire(WireGob))
}

// TestDispatchIntakeFaultShedsHonestly: a forced admission-control fault
// surfaces as the standard overload verdict — the client sees a retryable
// 429, not a broken stream. The dispatcher intake only exists on a batching
// server, so this starts one explicitly.
func TestDispatchIntakeFaultShedsHonestly(t *testing.T) {
	defer faultpoint.DisableAll()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go NewServer(codecBodies(2), WithBatchWindow(time.Millisecond)).Serve(context.Background(), ln)
	addr := ln.Addr().String()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	x := wireTensor(601, 1, 4, 8, 8)

	faultpoint.Enable("comm/dispatch-intake", faultpoint.Policy{Kind: faultpoint.Error, Count: 1})
	if _, _, err := client.Exchange(context.Background(), x); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("dispatch-intake fault surfaced as %v, want ErrOverloaded", err)
	}
	// The shed was honest: the same connection serves the next request.
	if _, _, err := client.Exchange(context.Background(), x); err != nil {
		t.Fatalf("connection unusable after an injected shed: %v", err)
	}
}

// TestDialFaultSurfaces: the client-side dial site fails the connection
// before any socket traffic, with the address in the error.
func TestDialFaultSurfaces(t *testing.T) {
	defer faultpoint.DisableAll()
	addr := startServer(t, codecBodies(2))
	faultpoint.Enable("comm/dial", faultpoint.Policy{Kind: faultpoint.Error, Count: 1})
	if _, err := Dial(addr); !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("dial fault surfaced as %v, want injected", err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial after fault exhausted: %v", err)
	}
	c.Close()
}

// BenchmarkServeRequestLoopFaultpointsDisabled is BenchmarkServeRequestLoop
// with the faultpoint layer explicitly disarmed: CI gates this at 0
// allocs/op to pin that compiled-in fault sites cost the serving loop
// nothing — one atomic load per site, no allocations, no branches taken.
func BenchmarkServeRequestLoopFaultpointsDisabled(b *testing.B) {
	faultpoint.DisableAll()
	const nBodies = 4
	srv := NewServer(codecBodies(nBodies), WithWorkers(2),
		WithReplicas(func() []*nn.Network { return codecBodies(nBodies) }))
	body, err := appendRequest(nil, &Request{Features: wireTensor(22, 4, 4, 8, 8)}, false, trace.Context{})
	if err != nil {
		b.Fatal(err)
	}
	j := newJob()
	replicas := newReplicaCache(PrecisionF64)
	encBuf := make([]byte, 0, 1<<20)
	for i := 0; i < 2; i++ {
		if err := parseRequestInto(body, &j.req, (*arenaAlloc)(&j.arena), j, nil); err != nil {
			b.Fatal(err)
		}
		if resp := srv.serve(j, replicas); resp.Err != "" {
			b.Fatal(resp.Err)
		}
		j.reset()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := parseRequestInto(body, &j.req, (*arenaAlloc)(&j.arena), j, nil); err != nil {
			b.Fatal(err)
		}
		resp := srv.serve(j, replicas)
		if resp.Err != "" {
			b.Fatal(resp.Err)
		}
		var e error
		encBuf, e = appendResponse(append(encBuf[:0], 0, 0, 0, 0), resp, false, true, 0)
		if e != nil {
			b.Fatal(e)
		}
		j.reset()
	}
}
