// Package ensembler is a pure-Go reproduction of "Ensembler: Protect
// Collaborative Inference Privacy from Model Inversion Attack via Selective
// Ensemble" (DAC 2025, arXiv:2401.10859). The implementation lives in the
// internal packages; see README.md for the architecture overview, DESIGN.md
// for the system inventory and per-experiment index, and bench_test.go for
// the harness that regenerates every table in the paper's evaluation.
package ensembler
