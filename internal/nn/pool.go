package nn

import (
	"fmt"
	"math"

	"ensembler/internal/tensor"
)

// MaxPool2D applies max pooling with a square window. The paper's ResNet-18
// setup keeps the MaxPool layer for CIFAR-10 and removes it for CIFAR-100;
// the split-model builders honor that switch.
type MaxPool2D struct {
	K, Stride int
	argmax    []int
	inShape   []int
}

// NewMaxPool2D creates a max-pooling layer with window k and the given stride.
func NewMaxPool2D(k, stride int) *MaxPool2D { return &MaxPool2D{K: k, Stride: stride} }

// Forward pools each window to its maximum, caching argmax indices.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D expects NCHW, got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOutSize(h, p.K, p.Stride, 0)
	ow := tensor.ConvOutSize(w, p.K, p.Stride, 0)
	out := tensor.New(n, c, oh, ow)
	p.inShape = append([]int(nil), x.Shape...)
	p.argmax = make([]int, n*c*oh*ow)
	oi := 0
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := math.Inf(-1)
					bestIdx := -1
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride + ky
						if iy >= h {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride + kx
							if ix >= w {
								continue
							}
							idx := base + iy*w + ix
							if v := x.Data[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					out.Data[oi] = best
					p.argmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward routes each output gradient to the input position that won the max.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(p.inShape...)
	for i, idx := range p.argmax {
		out.Data[idx] += grad.Data[i]
	}
	return out
}

// Params returns nil; pooling has no parameters.
func (p *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool reduces [N,C,H,W] to [N,C] by averaging each channel; it is
// the penultimate layer of the ResNet bodies, producing the feature vectors
// the server returns to the client.
type GlobalAvgPool struct {
	inShape []int
}

// NewGlobalAvgPool creates a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward averages over the spatial dimensions.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool expects NCHW, got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	g.inShape = append([]int(nil), x.Shape...)
	hw := float64(h * w)
	out := tensor.New(n, c)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * h * w
			s := 0.0
			for j := 0; j < h*w; j++ {
				s += x.Data[base+j]
			}
			out.Data[ni*c+ci] = s / hw
		}
	}
	return out
}

// Backward spreads each channel gradient uniformly over its spatial extent.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	out := tensor.New(g.inShape...)
	inv := 1 / float64(h*w)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			gv := grad.Data[ni*c+ci] * inv
			base := (ni*c + ci) * h * w
			for j := 0; j < h*w; j++ {
				out.Data[base+j] = gv
			}
		}
	}
	return out
}

// Params returns nil; pooling has no parameters.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Upsample2D performs nearest-neighbour upsampling by an integer factor; the
// attacker's decoder uses it (conv + upsample is a stabler inverse than
// transposed convolution at this scale).
type Upsample2D struct {
	Factor  int
	inShape []int
}

// NewUpsample2D creates a nearest-neighbour upsampler.
func NewUpsample2D(factor int) *Upsample2D { return &Upsample2D{Factor: factor} }

// Forward repeats each pixel factor×factor times.
func (u *Upsample2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: Upsample2D expects NCHW, got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	u.inShape = append([]int(nil), x.Shape...)
	f := u.Factor
	out := tensor.New(n, c, h*f, w*f)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			inBase := (ni*c + ci) * h * w
			outBase := (ni*c + ci) * h * f * w * f
			for iy := 0; iy < h*f; iy++ {
				srcRow := inBase + (iy/f)*w
				dstRow := outBase + iy*w*f
				for ix := 0; ix < w*f; ix++ {
					out.Data[dstRow+ix] = x.Data[srcRow+ix/f]
				}
			}
		}
	}
	return out
}

// Backward sums gradients over each factor×factor block.
func (u *Upsample2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := u.inShape[0], u.inShape[1], u.inShape[2], u.inShape[3]
	f := u.Factor
	out := tensor.New(u.inShape...)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			inBase := (ni*c + ci) * h * w
			gBase := (ni*c + ci) * h * f * w * f
			for iy := 0; iy < h*f; iy++ {
				dstRow := inBase + (iy/f)*w
				srcRow := gBase + iy*w*f
				for ix := 0; ix < w*f; ix++ {
					out.Data[dstRow+ix/f] += grad.Data[srcRow+ix]
				}
			}
		}
	}
	return out
}

// Params returns nil; upsampling has no parameters.
func (u *Upsample2D) Params() []*Param { return nil }

// Flatten reshapes [N, ...] to [N, D].
type Flatten struct {
	inShape []int
}

// NewFlatten creates a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all trailing dimensions. The output deliberately ALIASES
// x via Reshape (shared backing array): a reshape must not copy activations,
// and downstream layers only read their input. A consumer that mutated its
// input in place would corrupt x — none of the built-in layers do.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append([]int(nil), x.Shape...)
	n := x.Shape[0]
	return x.Reshape(n, x.Size()/n)
}

// Backward restores the cached input shape (aliasing grad, same contract as
// Forward).
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params returns nil; flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }

// Reshape2D4D reshapes [N, C*H*W] vectors into [N, C, H, W] maps; the
// attacker's decoder uses it to turn feature vectors back into spatial maps.
type Reshape2D4D struct {
	C, H, W int
}

// NewReshape2D4D creates the vector→map reshape layer.
func NewReshape2D4D(c, h, w int) *Reshape2D4D { return &Reshape2D4D{C: c, H: h, W: w} }

// Forward reshapes to NCHW, aliasing x's backing array (see Flatten.Forward
// for the contract that makes the aliasing safe).
func (r *Reshape2D4D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Shape[0]
	return x.Reshape(n, r.C, r.H, r.W)
}

// Backward flattens the gradient back to [N, D], aliasing grad.
func (r *Reshape2D4D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	return grad.Reshape(n, r.C*r.H*r.W)
}

// Params returns nil; reshape has no parameters.
func (r *Reshape2D4D) Params() []*Param { return nil }
