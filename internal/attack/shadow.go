// Package attack implements the adversarial server's model inversion attack
// (MIA) from the paper's threat model (§II-B, He et al. 2019): the server
// holds the body weights θs and in-distribution auxiliary data, cannot query
// the client, and tries to reconstruct the client's private input from the
// observed intermediate features.
//
// The attack has two halves. First, TrainShadow fits a shadow network
// {~Mc,h, Ms, ~Mc,t} around the frozen server bodies on auxiliary data so
// that ~Mc,h approximates the client's private head composed with its noise.
// Second, TrainDecoder fits ~Mc,h⁻¹ — a convolutional decoder mapping shadow
// features back to images — and applies it to the victim's transmitted
// features. An optimization-based variant (RMLE) inverts the shadow head
// directly by gradient descent on the input pixels.
package attack

import (
	"fmt"
	"io"
	"math"

	"ensembler/internal/data"
	"ensembler/internal/nn"
	"ensembler/internal/optim"
	"ensembler/internal/rng"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
)

// Config parameterizes the attack training runs.
type Config struct {
	Arch          split.Arch
	ShadowEpochs  int
	DecoderEpochs int
	BatchSize     int
	ShadowLR      float64
	DecoderLR     float64
	Seed          int64
	Log           io.Writer

	// AlignWeight enables feature-statistics alignment: the semi-honest
	// server passively observes the client's transmitted features during
	// normal operation, so it can additionally train the shadow head to
	// match the observed per-channel mean/std. This substantially
	// strengthens the query-free attack (without it the shadow head finds a
	// task-equivalent but geometrically different representation and the
	// decoder inverts the wrong function). Zero disables alignment.
	AlignWeight float64
	// Observed holds the passively captured victim features used for
	// alignment; nil disables alignment.
	Observed *tensor.Tensor
	// StructuredShadow selects the structure-matched shadow head: one
	// convolution plus a trainable spatial bias map, mirroring the defended
	// pipelines' "conv head + fixed additive noise" form. False selects the
	// paper's three-convolution shadow.
	StructuredShadow bool
	// Restarts > 1 repeats the whole shadow+decoder fit with different
	// seeds and keeps the strongest reconstruction — the adversary's best
	// attempt, which is what defense tables must be scored against.
	Restarts int
}

// ChannelStats summarizes per-channel first and second moments of a feature
// tensor [N,C,H,W] — everything the alignment term needs from the attacker's
// passive observations.
type ChannelStats struct {
	Mean, Std []float64
}

// ComputeChannelStats measures per-channel mean and standard deviation over
// batch and space.
func ComputeChannelStats(f *tensor.Tensor) ChannelStats {
	n, c, h, w := f.Shape[0], f.Shape[1], f.Shape[2], f.Shape[3]
	m := float64(n * h * w)
	st := ChannelStats{Mean: make([]float64, c), Std: make([]float64, c)}
	for ci := 0; ci < c; ci++ {
		sum := 0.0
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * h * w
			for j := 0; j < h*w; j++ {
				sum += f.Data[base+j]
			}
		}
		mean := sum / m
		vsum := 0.0
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * h * w
			for j := 0; j < h*w; j++ {
				d := f.Data[base+j] - mean
				vsum += d * d
			}
		}
		st.Mean[ci] = mean
		st.Std[ci] = math.Sqrt(vsum/m + 1e-8)
	}
	return st
}

// alignLossGrad returns the moment-matching penalty between the shadow
// head's output h and the observed statistics, with its gradient w.r.t. h:
// L = Σ_c (μ_c−μ̂_c)² + (σ_c−σ̂_c)².
func alignLossGrad(h *tensor.Tensor, obs ChannelStats) (float64, *tensor.Tensor) {
	n, c, hh, ww := h.Shape[0], h.Shape[1], h.Shape[2], h.Shape[3]
	m := float64(n * hh * ww)
	grad := tensor.New(h.Shape...)
	cur := ComputeChannelStats(h)
	loss := 0.0
	for ci := 0; ci < c; ci++ {
		dm := cur.Mean[ci] - obs.Mean[ci]
		ds := cur.Std[ci] - obs.Std[ci]
		loss += dm*dm + ds*ds
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * hh * ww
			for j := 0; j < hh*ww; j++ {
				centered := h.Data[base+j] - cur.Mean[ci]
				grad.Data[base+j] = 2*dm/m + 2*ds*centered/(m*cur.Std[ci])
			}
		}
	}
	return loss, grad
}

// MeanFeatureMap averages a feature tensor [N,C,H,W] over the batch,
// producing the [C,H,W] mean map — the spatial statistic a semi-honest
// server accumulates from observed traffic. For a "conv + fixed noise"
// client this map pins the noise component almost exactly.
func MeanFeatureMap(f *tensor.Tensor) *tensor.Tensor {
	n := f.Shape[0]
	out := tensor.New(f.Shape[1], f.Shape[2], f.Shape[3])
	per := out.Size()
	for ni := 0; ni < n; ni++ {
		base := ni * per
		for j := 0; j < per; j++ {
			out.Data[j] += f.Data[base+j]
		}
	}
	return out.ScaleInPlace(1 / float64(n))
}

// meanMapLossGrad penalizes the squared distance between the batch-mean of
// the shadow features and the observed mean map:
// L = (1/CHW)·Σ_j (mean_j − obs_j)², with gradient w.r.t. every element.
func meanMapLossGrad(h *tensor.Tensor, obsMap *tensor.Tensor) (float64, *tensor.Tensor) {
	n := h.Shape[0]
	per := obsMap.Size()
	grad := tensor.New(h.Shape...)
	cur := MeanFeatureMap(h)
	loss := 0.0
	inv := 1 / float64(per)
	for j := 0; j < per; j++ {
		d := cur.Data[j] - obsMap.Data[j]
		loss += d * d * inv
		g := 2 * d * inv / float64(n)
		for ni := 0; ni < n; ni++ {
			grad.Data[ni*per+j] = g
		}
	}
	return loss, grad
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.ShadowEpochs == 0 {
		c.ShadowEpochs = 6
	}
	if c.DecoderEpochs == 0 {
		c.DecoderEpochs = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.ShadowLR == 0 {
		c.ShadowLR = 0.003
	}
	if c.DecoderLR == 0 {
		c.DecoderLR = 0.002
	}
	return c
}

// Shadow is the adversary's surrogate network: a three-convolution shadow
// head (the paper's choice — one conv simulating the unknown Mc,h plus two
// simulating the added noise), the frozen server bodies it trains against,
// an optional learnable gate vector (the adaptive attack's imitation of the
// secret selector), and a shadow tail.
type Shadow struct {
	Arch   split.Arch
	Head   *nn.Network
	Bodies []*nn.Network
	Gates  *nn.Param // nil for non-adaptive attacks
	Tail   *nn.Network

	feats   []*tensor.Tensor // per-body features cached for Backward
	headOut *tensor.Tensor   // head output cached for the alignment term
}

// NewShadow builds an untrained shadow network against the given frozen
// bodies. adaptive adds the learnable selector-imitating gates; structured
// selects the conv+spatial-bias shadow head instead of the 3-conv one.
func NewShadow(arch split.Arch, bodies []*nn.Network, adaptive, structured bool, r *rng.RNG) *Shadow {
	if len(bodies) == 0 {
		panic("attack: shadow needs at least one server body")
	}
	c := arch.HeadC
	var head *nn.Network
	if structured {
		// Mirror the victim's functional form Conv + fixed noise: one conv
		// plus a trainable spatial bias (initialized to zero). The tight
		// hypothesis class makes the frozen body identify the head sharply.
		_, h, w := arch.HeadOutShape()
		bias := nn.NewAdditiveNoise("shadow.bias", nn.NoiseTrainable, c, h, w, 0, r.Split())
		head = nn.NewNetwork("shadow.head",
			nn.NewConv2D("shadow.conv1", arch.InC, c, 3, 1, 1, true, r),
			bias,
		)
	} else {
		head = nn.NewNetwork("shadow.head",
			nn.NewConv2D("shadow.conv1", arch.InC, c, 3, 1, 1, true, r),
			nn.NewReLU(),
			nn.NewConv2D("shadow.conv2", c, c, 3, 1, 1, true, r),
			nn.NewReLU(),
			nn.NewConv2D("shadow.conv3", c, c, 3, 1, 1, true, r),
		)
	}
	s := &Shadow{
		Arch:   arch,
		Head:   head,
		Bodies: bodies,
		Tail:   arch.NewTail("shadow.tail", len(bodies), 0, r),
	}
	if adaptive {
		// Initialize gates at the uniform selector value 1/len(bodies).
		g := tensor.Full(1/float64(len(bodies)), len(bodies))
		s.Gates = nn.NewParam("shadow.gates", g)
	}
	return s
}

// gate returns the branch weight for body i.
func (s *Shadow) gate(i int) float64 {
	if s.Gates != nil {
		return s.Gates.Value.Data[i]
	}
	return 1 / float64(len(s.Bodies))
}

// Forward runs the shadow pipeline to logits, caching branch features and
// the head output.
func (s *Shadow) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	h := s.Head.Forward(x, train)
	s.headOut = h
	s.feats = make([]*tensor.Tensor, len(s.Bodies))
	parts := make([]*tensor.Tensor, len(s.Bodies))
	for i, b := range s.Bodies {
		f := b.Forward(h, false) // bodies stay frozen in eval mode
		s.feats[i] = f
		parts[i] = f.Scale(s.gate(i))
	}
	return s.Tail.Forward(nn.ConcatFeatures(parts), train)
}

// Backward propagates the classification gradient into the shadow head,
// tail, and (when adaptive) the gates; the bodies' own parameter gradients
// are discarded because the attacker cannot change θs. extraHeadGrad, when
// non-nil, is added at the head output (the alignment term's gradient).
func (s *Shadow) Backward(gradLogits, extraHeadGrad *tensor.Tensor) {
	gcat := s.Tail.Backward(gradLogits)
	widths := make([]int, len(s.Bodies))
	for i := range widths {
		widths[i] = s.Arch.FeatureDim()
	}
	parts := nn.SplitFeatureGrad(gcat, widths)
	var gradHead *tensor.Tensor
	for i, b := range s.Bodies {
		if s.Gates != nil {
			// d(gate_i · f_i)/d gate_i = <grad_i, f_i>.
			s.Gates.Grad.Data[i] += parts[i].Dot(s.feats[i])
		}
		gf := parts[i].Scale(s.gate(i))
		g := b.Backward(gf)
		b.ZeroGrad()
		if gradHead == nil {
			gradHead = g
		} else {
			gradHead.AddInPlace(g)
		}
	}
	if extraHeadGrad != nil {
		gradHead.AddInPlace(extraHeadGrad)
	}
	s.Head.Backward(gradHead)
}

// Params returns the attacker-trainable parameters.
func (s *Shadow) Params() []*nn.Param {
	ps := append(s.Head.Params(), s.Tail.Params()...)
	if s.Gates != nil {
		ps = append(ps, s.Gates)
	}
	return ps
}

// HeadFeatures returns ~Mc,h(x) — the surrogate of the victim's transmitted
// features, used to train the decoder.
func (s *Shadow) HeadFeatures(x *tensor.Tensor) *tensor.Tensor {
	return s.Head.Forward(x, false)
}

// TrainShadow fits the shadow network on the attacker's auxiliary dataset by
// classification, exactly as the legitimate pipeline was trained (the
// attacker knows the task and data distribution, §II-B). When cfg.Observed
// and cfg.AlignWeight are set, the loss gains the feature-statistics
// alignment term built from the server's passive observations.
func TrainShadow(cfg Config, bodies []*nn.Network, adaptive bool, aux *data.Dataset) *Shadow {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	s := NewShadow(cfg.Arch, bodies, adaptive, cfg.StructuredShadow, r.Split())
	// Adam rather than SGD: the attacker fits a small head against a frozen,
	// co-adapted body, a landscape where SGD stalls far from the victim's
	// loss level (verified empirically; see EXPERIMENTS.md).
	opt := optim.NewAdam(s.Params(), cfg.ShadowLR)
	sched := optim.StepDecay(cfg.ShadowLR, 0.5, max(1, cfg.ShadowEpochs/2))
	var obs ChannelStats
	var obsMap *tensor.Tensor
	align := cfg.AlignWeight > 0 && cfg.Observed != nil
	if align {
		obs = ComputeChannelStats(cfg.Observed)
		obsMap = MeanFeatureMap(cfg.Observed)
	}
	for epoch := 0; epoch < cfg.ShadowEpochs; epoch++ {
		opt.SetLR(sched(epoch))
		total, batches := 0.0, 0
		for _, idxs := range aux.Batches(cfg.BatchSize, r) {
			x, labels := aux.Batch(idxs)
			logits := s.Forward(x, true)
			loss, grad := nn.SoftmaxCrossEntropy(logits, labels)
			var extra *tensor.Tensor
			if align {
				aLoss, aGrad := alignLossGrad(s.headOut, obs)
				mLoss, mGrad := meanMapLossGrad(s.headOut, obsMap)
				loss += cfg.AlignWeight * (aLoss + mLoss)
				extra = aGrad.AddInPlace(mGrad).ScaleInPlace(cfg.AlignWeight)
			}
			s.Backward(grad, extra)
			optim.ClipGradNorm(s.Params(), 5)
			opt.Step()
			total += loss
			batches++
		}
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "shadow: epoch %d/%d loss %.4f\n", epoch+1, cfg.ShadowEpochs, total/float64(batches))
		}
	}
	return s
}
