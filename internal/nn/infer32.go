package nn

import (
	"fmt"
	"math"

	"ensembler/internal/tensor"
)

// This file is the float32 inference backend: a Network is compiled once
// into a Net32 whose weights were narrowed to float32 at compile time, and
// whose forward pass runs entirely on the f32 *Into kernels over an Arena32
// scratch — the precision the serving path selects with -precision f32.
//
// The float64 ForwardInfer stays untouched as the reference oracle: a Net32
// is a second implementation, not a parameterization of the first, so the
// f64 path keeps producing bit-identical results to every prior release.
// Drift policy (DESIGN.md §2i): weights and features are each rounded to
// float32 exactly once, kernels accumulate in float32 (reductions with long
// error chains — global average pooling — accumulate in float64), and the
// end-to-end divergence from the f64 oracle is held under 1e-5 relative by
// TestCompileF32Drift and the seed-network property test in internal/audit.

// Scratch32 is the reusable activation storage for f32 inference passes.
// The zero value is usable; the first pass sizes it. Same ownership rules as
// Scratch: Reset invalidates every returned tensor, one goroutine per
// scratch.
type Scratch32 struct {
	arena tensor.Arena32
}

// NewScratch32 returns an empty scratch; the first ForwardInfer sizes it.
func NewScratch32() *Scratch32 { return &Scratch32{} }

// Reset reclaims the scratch for the next pass, invalidating every tensor
// the previous pass returned.
func (s *Scratch32) Reset() { s.arena.Reset() }

// Footprint reports the warmed scratch's backing memory in bytes.
func (s *Scratch32) Footprint() int { return s.arena.Footprint() }

// layer32 is one compiled f32 inference layer.
type layer32 interface {
	forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32
}

// Net32 is a Network compiled for float32 inference: weights pre-narrowed,
// layers specialized to the f32 kernels. Like a Network replica it is safe
// for one goroutine at a time. It holds no references to the source
// network's parameter tensors except through AdditiveNoise resample mode
// (which mutates the source layer exactly as the f64 path does).
type Net32 struct {
	Name   string
	layers []layer32
}

// CompileF32 narrows a network's weights to float32 and returns its f32
// inference twin. Every built-in layer type compiles; a custom Layer
// implementation (which the f64 path would run via its Forward fallback)
// has no f32 counterpart and returns an error — precision dispatch must not
// silently change which code serves a model.
func CompileF32(n *Network) (*Net32, error) {
	out := &Net32{Name: n.Name, layers: make([]layer32, 0, len(n.Layers))}
	for i, l := range n.Layers {
		cl, err := compileLayer32(l)
		if err != nil {
			return nil, fmt.Errorf("nn: CompileF32 %s layer %d: %w", n.Name, i, err)
		}
		out.layers = append(out.layers, cl)
	}
	return out, nil
}

// compileLayer32 narrows one layer. The type switch is the compile-time
// mirror of the InferenceLayer conformance list in infer.go.
func compileLayer32(l Layer) (layer32, error) {
	switch v := l.(type) {
	case *Network:
		return CompileF32(v)
	case *Conv2D:
		return compileConv32(v), nil
	case *Linear:
		return &linear32{
			in: v.In, out: v.Out,
			w: tensor.Narrow32(v.W.Value), b: tensor.Narrow32(v.B.Value), name: v.W.Name,
		}, nil
	case *BatchNorm2D:
		return compileBN32(v), nil
	case *ReLU:
		return relu32{}, nil
	case *LeakyReLU:
		return leakyReLU32{alpha: float32(v.Alpha)}, nil
	case *Sigmoid:
		return sigmoid32{}, nil
	case *Tanh:
		return tanh32{}, nil
	case *MaxPool2D:
		return maxPool32{k: v.K, stride: v.Stride}, nil
	case *GlobalAvgPool:
		return globalAvgPool32{}, nil
	case *Upsample2D:
		return upsample32{factor: v.Factor}, nil
	case *Flatten:
		return flatten32{}, nil
	case *Reshape2D4D:
		return reshape32{c: v.C, h: v.H, w: v.W}, nil
	case *AdditiveNoise:
		return &additiveNoise32{src: v, noise: narrowSlice(v.Noise.Value.Data)}, nil
	case *Dropout:
		return dropout32{}, nil
	case *BasicBlock:
		blk := &basicBlock32{
			conv1: compileConv32(v.Conv1), bn1: compileBN32(v.BN1),
			conv2: compileConv32(v.Conv2), bn2: compileBN32(v.BN2),
		}
		if v.ShortConv != nil {
			blk.shortConv = compileConv32(v.ShortConv)
			blk.shortBN = compileBN32(v.ShortBN)
		}
		return blk, nil
	default:
		return nil, fmt.Errorf("no float32 inference path for layer type %T", l)
	}
}

// compileConv32 narrows one convolution layer.
func compileConv32(v *Conv2D) *conv2D32 {
	var b *tensor.Tensor32
	if v.B != nil {
		b = tensor.Narrow32(v.B.Value)
	}
	return &conv2D32{
		inC: v.InC, outC: v.OutC, kh: v.KH, kw: v.KW, stride: v.Stride, pad: v.Pad,
		w: tensor.Narrow32(v.W.Value), b: b, name: v.W.Name,
	}
}

// compileBN32 folds one batch-norm layer's running statistics to f32. The
// reciprocal square root is computed in f64 and narrowed once — the same
// rounding structure as the f64 path.
func compileBN32(v *BatchNorm2D) *batchNorm32 {
	bn := &batchNorm32{
		c:    v.C,
		mean: make([]float32, v.C), inv: make([]float32, v.C),
		gamma: make([]float32, v.C), beta: make([]float32, v.C),
		name: v.Gamma.Name,
	}
	for ci := 0; ci < v.C; ci++ {
		bn.mean[ci] = float32(v.RunMean.Data[ci])
		bn.inv[ci] = float32(1 / math.Sqrt(v.RunVar.Data[ci]+v.Eps))
		bn.gamma[ci] = float32(v.Gamma.Value.Data[ci])
		bn.beta[ci] = float32(v.Beta.Value.Data[ci])
	}
	return bn
}

// narrowSlice rounds a float64 slice to a fresh float32 slice.
func narrowSlice(src []float64) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}

// ForwardInfer runs the compiled stack over the scratch. The result lives in
// the scratch and is invalidated by Scratch32.Reset, like the f64 path.
func (n *Net32) ForwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	for _, l := range n.layers {
		x = l.forwardInfer(x, s)
	}
	return x
}

func (n *Net32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	return n.ForwardInfer(x, s)
}

// InferScratch returns a Scratch32 pre-sized for inputs of the given shape
// by one throwaway warm-up pass, mirroring Network.InferScratch.
func (n *Net32) InferScratch(inputShape ...int) *Scratch32 {
	s := NewScratch32()
	n.ForwardInfer(tensor.New32(inputShape...), s)
	s.Reset()
	return s
}

type conv2D32 struct {
	inC, outC, kh, kw, stride, pad int
	w, b                           *tensor.Tensor32
	name                           string
}

func (c *conv2D32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	if len(x.Shape) != 4 || x.Shape[1] != c.inC {
		panic(fmt.Sprintf("nn: Conv2D32 %s expects [N,%d,H,W], got %v", c.name, c.inC, x.Shape))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOutSize(h, c.kh, c.stride, c.pad)
	ow := tensor.ConvOutSize(w, c.kw, c.stride, c.pad)
	y := s.arena.NewTensor(n, c.outC, oh, ow)
	cols := s.arena.NewTensor(c.inC*c.kh*c.kw, oh*ow)
	return tensor.ConvForwardInto32(y, x, c.w, c.b, cols, c.kh, c.kw, c.stride, c.pad)
}

type linear32 struct {
	in, out int
	w, b    *tensor.Tensor32
	name    string
}

func (l *linear32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	if len(x.Shape) != 2 || x.Shape[1] != l.in {
		panic(fmt.Sprintf("nn: Linear32 %s expects [N,%d], got %v", l.name, l.in, x.Shape))
	}
	y := s.arena.NewTensor(x.Shape[0], l.out)
	tensor.MatMulTransBInto32(y, x, l.w)
	for i := 0; i < x.Shape[0]; i++ {
		row := y.Data[i*l.out : (i+1)*l.out]
		for j := range row {
			row[j] += l.b.Data[j]
		}
	}
	return y
}

type batchNorm32 struct {
	c                      int
	mean, inv, gamma, beta []float32
	name                   string
}

func (b *batchNorm32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	if len(x.Shape) != 4 || x.Shape[1] != b.c {
		panic(fmt.Sprintf("nn: BatchNorm32 %s expects [N,%d,H,W], got %v", b.name, b.c, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	hw := h * w
	out := s.arena.NewTensor(x.Shape...)
	for ci := 0; ci < c; ci++ {
		inv, mean := b.inv[ci], b.mean[ci]
		g, bt := b.gamma[ci], b.beta[ci]
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * hw
			src := x.Data[base : base+hw]
			dst := out.Data[base : base+hw]
			for j, v := range src {
				// Same rounding structure as the f64 oracle, in f32.
				dst[j] = g*((v-mean)*inv) + bt
			}
		}
	}
	return out
}

type relu32 struct{}

func (relu32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	out := s.arena.NewTensor(x.Shape...)
	reluSlice32(out.Data, x.Data)
	return out
}

// reluSlice32 writes max(0, src) into dst; dst may alias src.
func reluSlice32(dst, src []float32) {
	for i, v := range src {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

type leakyReLU32 struct{ alpha float32 }

func (l leakyReLU32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	out := s.arena.NewTensor(x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = l.alpha * v
		}
	}
	return out
}

// The transcendental activations evaluate through the float64 math library
// and narrow the result: a float32 exp/tanh approximation would save little
// (activations are a sliver of conv/matmul time) and cost drift headroom.

type sigmoid32 struct{}

func (sigmoid32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	out := s.arena.NewTensor(x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return out
}

type tanh32 struct{}

func (tanh32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	out := s.arena.NewTensor(x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = float32(math.Tanh(float64(v)))
	}
	return out
}

type maxPool32 struct{ k, stride int }

func (p maxPool32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: MaxPool32 expects NCHW, got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOutSize(h, p.k, p.stride, 0)
	ow := tensor.ConvOutSize(w, p.k, p.stride, 0)
	out := s.arena.NewTensor(n, c, oh, ow)
	oi := 0
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					for ky := 0; ky < p.k; ky++ {
						iy := oy*p.stride + ky
						if iy >= h {
							continue
						}
						for kx := 0; kx < p.k; kx++ {
							ix := ox*p.stride + kx
							if ix >= w {
								continue
							}
							if v := x.Data[base+iy*w+ix]; v > best {
								best = v
							}
						}
					}
					out.Data[oi] = best
					oi++
				}
			}
		}
	}
	return out
}

type globalAvgPool32 struct{}

func (globalAvgPool32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool32 expects NCHW, got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	hw := float64(h * w)
	out := s.arena.NewTensor(n, c)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * h * w
			// A float64 accumulator: a running f32 sum over h*w elements
			// is the one reduction long enough to eat the drift budget.
			sum := 0.0
			for j := 0; j < h*w; j++ {
				sum += float64(x.Data[base+j])
			}
			out.Data[ni*c+ci] = float32(sum / hw)
		}
	}
	return out
}

type upsample32 struct{ factor int }

func (u upsample32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: Upsample32 expects NCHW, got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	f := u.factor
	out := s.arena.NewTensor(n, c, h*f, w*f)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			inBase := (ni*c + ci) * h * w
			outBase := (ni*c + ci) * h * f * w * f
			for iy := 0; iy < h*f; iy++ {
				srcRow := inBase + (iy/f)*w
				dstRow := outBase + iy*w*f
				for ix := 0; ix < w*f; ix++ {
					out.Data[dstRow+ix] = x.Data[srcRow+ix/f]
				}
			}
		}
	}
	return out
}

type flatten32 struct{}

func (flatten32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	n := x.Shape[0]
	return s.arena.View(x, n, x.Size()/n)
}

type reshape32 struct{ c, h, w int }

func (r reshape32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	return s.arena.View(x, x.Shape[0], r.c, r.h, r.w)
}

// additiveNoise32 keeps a pre-narrowed copy of the noise tensor. Resample
// mode redraws through the source layer's RNG (f64, identical stream to the
// oracle path) and re-narrows into the retained buffer — no allocation.
type additiveNoise32 struct {
	src   *AdditiveNoise
	noise []float32
}

func (a *additiveNoise32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: AdditiveNoise32 expects NCHW, got %v", x.Shape))
	}
	per := len(a.noise)
	if x.Size()/x.Shape[0] != per {
		panic(fmt.Sprintf("nn: AdditiveNoise32 %d noise values incompatible with input %v", per, x.Shape))
	}
	if a.src.Mode == NoiseResample {
		a.src.r.FillNormal(a.src.Noise.Value.Data, 0, a.src.Sigma)
		for i, v := range a.src.Noise.Value.Data {
			a.noise[i] = float32(v)
		}
	}
	out := s.arena.NewTensor(x.Shape...)
	for n := 0; n < x.Shape[0]; n++ {
		base := n * per
		for j := 0; j < per; j++ {
			out.Data[base+j] = x.Data[base+j] + a.noise[j]
		}
	}
	return out
}

type dropout32 struct{}

func (dropout32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 { return x }

type basicBlock32 struct {
	conv1, conv2 *conv2D32
	bn1, bn2     *batchNorm32
	shortConv    *conv2D32
	shortBN      *batchNorm32
}

func (b *basicBlock32) forwardInfer(x *tensor.Tensor32, s *Scratch32) *tensor.Tensor32 {
	main := b.conv1.forwardInfer(x, s)
	main = b.bn1.forwardInfer(main, s)
	reluSlice32(main.Data, main.Data)
	main = b.conv2.forwardInfer(main, s)
	main = b.bn2.forwardInfer(main, s)

	short := x
	if b.shortConv != nil {
		short = b.shortConv.forwardInfer(x, s)
		short = b.shortBN.forwardInfer(short, s)
	}
	if !main.SameShape(short) {
		panic(fmt.Sprintf("nn: BasicBlock32 branch shapes %v vs %v", main.Shape, short.Shape))
	}
	tensor.AddInto32(main, main, short)
	reluSlice32(main.Data, main.Data)
	return main
}
