package shard

// The per-shard circuit breaker: the upgrade from PR 3's boolean
// down-marking. Down-marking still sent every request to a dead shard (one
// cheap probe each); the breaker goes further — an open circuit
// short-circuits requests to the shard entirely, and recovery is governed
// by a jittered, exponentially backed-off reopen schedule with single-probe
// half-open admission, so a flapping shard cannot absorb a thundering herd
// of probes the instant its backoff expires.
//
//	closed ──(threshold consecutive failures)──▶ open
//	open ──(reopen backoff elapses; first caller admitted)──▶ half-open
//	half-open ──(probe succeeds)──▶ closed   (backoff resets)
//	half-open ──(probe fails)──▶ open        (backoff doubles, jittered)
//
// Traffic stays selection-independent: whether a shard's circuit is open
// depends only on its observed health, never on the secret selection, so a
// wire observer learns nothing new from the short-circuit pattern (the same
// argument that justified down-marking's probes — see DESIGN.md §2k).

import (
	"errors"
	"sync"
	"time"

	"ensembler/internal/rng"
)

// ErrBreakerOpen is returned (wrapped with the shard identity) when a
// request is short-circuited by an open circuit: the shard was not
// contacted at all. Callers distinguishing "shard refused fast" from "shard
// failed on the wire" match it with errors.Is.
var ErrBreakerOpen = errors.New("shard: circuit breaker open")

// BreakerState is one shard circuit's position in the state machine. The
// numeric values are the ensembler_shard_breaker_state gauge encoding.
type BreakerState int32

const (
	BreakerClosed   BreakerState = 0 // normal traffic
	BreakerOpen     BreakerState = 1 // short-circuiting; reopen pending
	BreakerHalfOpen BreakerState = 2 // one probe in flight decides
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "invalid"
}

// breaker is one shard's circuit. Its mutex is taken once per request per
// shard — noise next to a network round trip, same as the health counters.
type breaker struct {
	mu sync.Mutex

	threshold int           // consecutive failures that open the circuit
	base      time.Duration // first reopen wait
	maxWait   time.Duration // reopen wait cap
	jitter    float64       // ± fraction applied to each reopen wait
	r         *rng.RNG      // jitter source, seeded for deterministic tests

	state       BreakerState
	consecFails int
	wait        time.Duration // current un-jittered reopen wait
	reopenAt    time.Time     // open → half-open eligibility instant
	opens       uint64        // total closed/half-open → open transitions
}

func newBreaker(threshold int, base, maxWait time.Duration, jitter float64, seed int64) *breaker {
	return &breaker{
		threshold: threshold,
		base:      base,
		maxWait:   maxWait,
		jitter:    jitter,
		r:         rng.New(seed),
	}
}

// jittered spreads a reopen wait by ±jitter so a fleet of clients that
// opened their circuits together does not re-probe the recovering shard in
// lockstep.
func (b *breaker) jittered(d time.Duration) time.Duration {
	if b.jitter <= 0 {
		return d
	}
	f := 1 + b.jitter*(2*b.r.Float64()-1)
	return time.Duration(float64(d) * f)
}

// allow decides one request's fate: admit normally, admit as the half-open
// probe (the caller must make a single bounded attempt), or short-circuit.
func (b *breaker) allow(now time.Time) (admit, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if now.Before(b.reopenAt) {
			return false, false
		}
		// Backoff elapsed: this caller becomes the probe, and the state
		// moves to half-open so every concurrent caller short-circuits
		// until the probe's verdict arrives.
		b.state = BreakerHalfOpen
		return true, true
	default: // BreakerHalfOpen: the single probe slot is taken
		return false, false
	}
}

// recordSuccess closes the circuit from any state and resets the failure
// streak and backoff.
func (b *breaker) recordSuccess() {
	b.mu.Lock()
	b.consecFails = 0
	b.state = BreakerClosed
	b.wait = 0
	b.mu.Unlock()
}

// releaseProbe returns the half-open probe slot when the probe's outcome
// says nothing about the shard (caller-side cancellation): the circuit
// reverts to open with its reopen wait already elapsed, so the next
// request becomes the new probe instead of the circuit wedging half-open.
func (b *breaker) releaseProbe() {
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.reopenAt = time.Time{}
	}
	b.mu.Unlock()
}

// recordFailure counts one failed exchange at the given instant: a closed
// circuit opens once the streak reaches the threshold; a failed half-open
// probe reopens with doubled (capped, jittered) backoff.
func (b *breaker) recordFailure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	switch b.state {
	case BreakerClosed:
		if b.consecFails >= b.threshold {
			b.open(now)
		}
	case BreakerHalfOpen:
		b.open(now)
	case BreakerOpen:
		// A straggler from a request admitted before the circuit opened;
		// the streak count above is all it contributes.
	}
}

// open (re)opens the circuit, doubling the reopen wait; caller holds b.mu.
func (b *breaker) open(now time.Time) {
	if b.wait <= 0 {
		b.wait = b.base
	} else {
		b.wait *= 2
	}
	if b.wait > b.maxWait {
		b.wait = b.maxWait
	}
	b.state = BreakerOpen
	b.reopenAt = now.Add(b.jittered(b.wait))
	b.opens++
}

// snapshot reads the breaker for Health()/metrics.
func (b *breaker) snapshot(now time.Time) (state BreakerState, consecFails int, opens uint64, reopenIn time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		if d := b.reopenAt.Sub(now); d > 0 {
			reopenIn = d
		}
	}
	return b.state, b.consecFails, b.opens, reopenIn
}
