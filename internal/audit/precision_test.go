package audit

import (
	"math"
	"testing"

	"ensembler/internal/attack"
	"ensembler/internal/commtest"
	"ensembler/internal/data"
	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// TestPrecisionDriftSeedNetwork is the precision property test for the f32
// compute backend: the full seed pipeline — client head + fixed noise (always
// f64), every server body, and the concat tail — forwarded in f64 and in f32
// across 100 random inputs, with every body feature and every final logit
// within the 1e-5 relative drift budget the serving stack promises
// (DESIGN.md §2i).
func TestPrecisionDriftSeedNetwork(t *testing.T) {
	const trials, budget = 100, 1e-5
	pipe := commtest.Pipeline(commtest.TinyArch(), 4, 2, 31)
	rt := pipe.NewClientRuntime()
	bodies := pipe.Bodies()
	tail := commtest.Tail(commtest.TinyArch(), len(bodies))

	bodies32 := make([]*nn.Net32, len(bodies))
	for i, b := range bodies {
		n32, err := nn.CompileF32(b)
		if err != nil {
			t.Fatalf("body %d: CompileF32: %v", i, err)
		}
		bodies32[i] = n32
	}
	s64 := nn.NewScratch()
	s32 := nn.NewScratch32()
	r := rng.New(32)
	for trial := 0; trial < trials; trial++ {
		x := tensor.New(1, 3, 8, 8)
		r.FillNormal(x.Data, 0, 1)
		feat := rt.Features(x)

		outs64 := make([]*tensor.Tensor, len(bodies))
		outs32w := make([]*tensor.Tensor, len(bodies))
		for i, b := range bodies {
			want := b.ForwardInfer(feat, s64)
			got := bodies32[i].ForwardInfer(tensor.Narrow32(feat), s32)
			if len(got.Data) != len(want.Data) {
				t.Fatalf("trial %d body %d: f32 shape %v, f64 %v", trial, i, got.Shape, want.Shape)
			}
			for k, v := range got.Data {
				if e := math.Abs(float64(v)-want.Data[k]) / math.Max(1, math.Abs(want.Data[k])); e > budget {
					t.Fatalf("trial %d body %d feature %d: drift %.3g relative (f32 %v vs f64 %v)",
						trial, i, k, e, v, want.Data[k])
				}
			}
			outs64[i] = want.Clone()
			outs32w[i] = tensor.Widen64(got)
			s64.Reset()
			s32.Reset()
		}

		// Through the tail: the client-side concat+linear head consumes the
		// widened f32 features exactly as a production client consumes an f32
		// server's response, and the logits must stay inside the same budget.
		want := tail.Forward(nn.ConcatFeatures(outs64), false)
		got := tail.Forward(nn.ConcatFeatures(outs32w), false)
		for k, v := range got.Data {
			if e := math.Abs(v-want.Data[k]) / math.Max(1, math.Abs(want.Data[k])); e > budget {
				t.Fatalf("trial %d logit %d: drift %.3g relative (f32 path %v vs f64 %v)",
					trial, k, e, v, want.Data[k])
			}
		}
	}
}

// TestPrecisionAttackSSIMUnchanged pins the audit plane to production
// precision: replaying the oracle inversion attack against features rounded
// to float32 (what an f32-compute, f32-wire deployment actually transmits)
// must score within the policy's hysteresis band of the f64 replay. A drift
// larger than that could flip a rotation decision on precision alone, which
// would make the auditor score a pipeline that never serves.
func TestPrecisionAttackSSIMUnchanged(t *testing.T) {
	pipe := commtest.Pipeline(commtest.TinyArch(), 4, 2, 33)
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, H: 8, Train: 8, Aux: 32, Test: 16, Seed: 11})
	floor := CalibrationFloor(sp.Test, 8)

	rt64 := pipe.NewClientRuntime()
	victim64 := runtimeVictim{features: rt64.Features}
	rt32 := pipe.NewClientRuntime()
	victim32 := runtimeVictim{features: func(x *tensor.Tensor) *tensor.Tensor {
		return tensor.Widen64(tensor.Narrow32(rt32.Features(x)))
	}}

	cfg := attackConfigTiny()
	cfg.Arch = pipe.Cfg.Arch
	out64 := attack.OracleDecoderAttack(cfg, victim64, sp.Aux, sp.Test, 8)
	out32 := attack.OracleDecoderAttack(cfg, victim32, sp.Aux, sp.Test, 8)
	for _, o := range []attack.Outcome{out64, out32} {
		if o.SSIM < -1 || o.SSIM > 1 {
			t.Fatalf("attack SSIM %v out of range", o.SSIM)
		}
	}
	// 0.05 is the auditor's default hysteresis: scores this close cannot by
	// themselves arm or disarm a rotation, so f32 serving stays auditable
	// with thresholds calibrated on the f64 oracle.
	const tol = 0.05
	if d := math.Abs(out64.SSIM - out32.SSIM); d > tol {
		t.Fatalf("attack on f32-rounded features scores %.4f vs %.4f on f64 (Δ %.4f > %.2f, floor %.3f)",
			out32.SSIM, out64.SSIM, d, tol, floor)
	}
}
