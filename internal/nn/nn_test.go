package nn

import (
	"bytes"
	"math"
	"testing"

	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// projLoss computes L = <layer(x), G> for a fixed random projection G,
// giving a scalar loss whose analytic input/parameter gradients come from
// Backward(G). It returns the loss plus the projection used.
func projLoss(l Layer, x *tensor.Tensor, train bool, g *tensor.Tensor) float64 {
	y := l.Forward(x, train)
	if g != nil {
		return y.Dot(g)
	}
	return y.Sum()
}

// checkLayerGradients verifies the analytic gradients of l against central
// differences, for both the input and every parameter.
func checkLayerGradients(t *testing.T, name string, l Layer, x *tensor.Tensor, train bool) {
	t.Helper()
	r := rng.New(12345)
	y := l.Forward(x, train)
	g := tensor.New(y.Shape...)
	r.FillNormal(g.Data, 0, 1)

	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	gx := l.Backward(g)

	const eps = 1e-6
	const tol = 2e-4
	checkOne := func(what string, buf []float64, analytic float64, idx int) {
		t.Helper()
		old := buf[idx]
		buf[idx] = old + eps
		lp := projLoss(l, x, train, g)
		buf[idx] = old - eps
		lm := projLoss(l, x, train, g)
		buf[idx] = old
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-analytic) > tol*(1+math.Abs(num)) {
			t.Errorf("%s %s[%d]: numeric %v vs analytic %v", name, what, idx, num, analytic)
		}
	}
	idxs := []int{0, x.Size() / 2, x.Size() - 1}
	for _, idx := range idxs {
		checkOne("x", x.Data, gx.Data[idx], idx)
	}
	for _, p := range l.Params() {
		pidxs := []int{0, p.Value.Size() / 2, p.Value.Size() - 1}
		for _, idx := range pidxs {
			checkOne(p.Name, p.Value.Data, p.Grad.Data[idx], idx)
		}
		// The probe re-ran Forward/Backward? No — projLoss only reruns
		// Forward, so accumulated grads are unchanged.
	}
}

func randInput(seed int64, shape ...int) *tensor.Tensor {
	r := rng.New(seed)
	x := tensor.New(shape...)
	r.FillNormal(x.Data, 0, 1)
	return x
}

func TestConv2DGradients(t *testing.T) {
	r := rng.New(1)
	l := NewConv2D("c", 3, 4, 3, 1, 1, true, r)
	checkLayerGradients(t, "Conv2D", l, randInput(2, 2, 3, 6, 6), true)
}

func TestConv2DStride2Gradients(t *testing.T) {
	r := rng.New(2)
	l := NewConv2D("c", 2, 3, 3, 2, 1, false, r)
	checkLayerGradients(t, "Conv2D/s2", l, randInput(3, 2, 2, 8, 8), true)
}

func TestLinearGradients(t *testing.T) {
	r := rng.New(3)
	l := NewLinear("fc", 6, 4, r)
	checkLayerGradients(t, "Linear", l, randInput(4, 3, 6), true)
}

func TestReLUGradients(t *testing.T) {
	checkLayerGradients(t, "ReLU", NewReLU(), randInput(5, 2, 10), true)
}

func TestLeakyReLUGradients(t *testing.T) {
	checkLayerGradients(t, "LeakyReLU", NewLeakyReLU(0.1), randInput(6, 2, 10), true)
}

func TestSigmoidGradients(t *testing.T) {
	checkLayerGradients(t, "Sigmoid", NewSigmoid(), randInput(7, 2, 10), true)
}

func TestTanhGradients(t *testing.T) {
	checkLayerGradients(t, "Tanh", NewTanh(), randInput(8, 2, 10), true)
}

func TestBatchNormTrainGradients(t *testing.T) {
	l := NewBatchNorm2D("bn", 3)
	// Nudge gamma/beta off their init so the test isn't at a special point.
	l.Gamma.Value.Data[1] = 1.3
	l.Beta.Value.Data[2] = -0.4
	checkLayerGradients(t, "BatchNorm(train)", l, randInput(9, 4, 3, 5, 5), true)
}

func TestBatchNormEvalGradients(t *testing.T) {
	l := NewBatchNorm2D("bn", 2)
	// Populate running stats with a couple of training passes first.
	x := randInput(10, 4, 2, 4, 4)
	l.Forward(x, true)
	l.Forward(x.Scale(1.5), true)
	checkLayerGradients(t, "BatchNorm(eval)", l, randInput(11, 4, 2, 4, 4), false)
}

func TestBatchNormNormalizesBatch(t *testing.T) {
	l := NewBatchNorm2D("bn", 2)
	x := randInput(12, 8, 2, 6, 6).AddScalarInPlace(3)
	y := l.Forward(x, true)
	// Per-channel mean ~0 and variance ~1 after normalization (gamma=1, beta=0).
	n, c, h, w := y.Shape[0], y.Shape[1], y.Shape[2], y.Shape[3]
	for ci := 0; ci < c; ci++ {
		sum, sumSq := 0.0, 0.0
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * h * w
			for j := 0; j < h*w; j++ {
				v := y.Data[base+j]
				sum += v
				sumSq += v * v
			}
		}
		m := float64(n * h * w)
		mean := sum / m
		variance := sumSq/m - mean*mean
		if math.Abs(mean) > 1e-9 {
			t.Errorf("channel %d mean %v", ci, mean)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Errorf("channel %d variance %v", ci, variance)
		}
	}
}

func TestMaxPoolGradients(t *testing.T) {
	checkLayerGradients(t, "MaxPool", NewMaxPool2D(2, 2), randInput(13, 2, 2, 6, 6), true)
}

func TestMaxPoolValues(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y := NewMaxPool2D(2, 2).Forward(x, false)
	want := tensor.FromSlice([]float64{6, 8, 14, 16}, 1, 1, 2, 2)
	if !y.AllClose(want, 0) {
		t.Errorf("MaxPool = %v", y.Data)
	}
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	checkLayerGradients(t, "GAP", NewGlobalAvgPool(), randInput(14, 3, 4, 5, 5), true)
}

func TestGlobalAvgPoolValues(t *testing.T) {
	x := tensor.Full(2, 2, 3, 4, 4)
	y := NewGlobalAvgPool().Forward(x, false)
	if len(y.Shape) != 2 || y.Shape[0] != 2 || y.Shape[1] != 3 {
		t.Fatalf("GAP shape %v", y.Shape)
	}
	for _, v := range y.Data {
		if v != 2 {
			t.Fatalf("GAP value %v", v)
		}
	}
}

func TestUpsampleGradients(t *testing.T) {
	checkLayerGradients(t, "Upsample", NewUpsample2D(2), randInput(15, 2, 2, 3, 3), true)
}

func TestUpsampleValues(t *testing.T) {
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	y := NewUpsample2D(2).Forward(x, false)
	want := tensor.FromSlice([]float64{
		1, 1, 2, 2,
		1, 1, 2, 2,
		3, 3, 4, 4,
		3, 3, 4, 4,
	}, 1, 1, 4, 4)
	if !y.AllClose(want, 0) {
		t.Errorf("Upsample = %v", y.Data)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := randInput(16, 2, 3, 4, 4)
	y := f.Forward(x, false)
	if y.Shape[0] != 2 || y.Shape[1] != 48 {
		t.Fatalf("Flatten shape %v", y.Shape)
	}
	g := f.Backward(y)
	if !g.SameShape(x) {
		t.Errorf("Flatten backward shape %v", g.Shape)
	}
}

func TestAdditiveNoiseFixedGradients(t *testing.T) {
	r := rng.New(17)
	l := NewAdditiveNoise("n", NoiseFixed, 2, 4, 4, 0.3, r)
	checkLayerGradients(t, "AdditiveNoise", l, randInput(18, 3, 2, 4, 4), true)
}

func TestAdditiveNoiseFixedIsConstant(t *testing.T) {
	r := rng.New(19)
	l := NewAdditiveNoise("n", NoiseFixed, 1, 2, 2, 0.5, r)
	x := tensor.New(1, 1, 2, 2)
	y1 := l.Forward(x, true)
	y2 := l.Forward(x, false)
	if !y1.AllClose(y2, 0) {
		t.Error("fixed noise must not change between calls")
	}
	if y1.L2Norm() == 0 {
		t.Error("noise should be nonzero")
	}
}

func TestAdditiveNoiseResampleChanges(t *testing.T) {
	r := rng.New(20)
	l := NewAdditiveNoise("n", NoiseResample, 1, 2, 2, 0.5, r)
	x := tensor.New(1, 1, 2, 2)
	y1 := l.Forward(x, true).Clone()
	y2 := l.Forward(x, true)
	if y1.AllClose(y2, 1e-12) {
		t.Error("resampled noise should differ between calls")
	}
}

func TestAdditiveNoiseTrainableGradient(t *testing.T) {
	r := rng.New(21)
	l := NewAdditiveNoise("n", NoiseTrainable, 1, 2, 2, 0.1, r)
	x := randInput(22, 3, 1, 2, 2)
	y := l.Forward(x, true)
	g := tensor.Full(1, y.Shape...)
	l.Noise.ZeroGrad()
	l.Backward(g)
	// dL/dnoise = sum over batch of ones = batch size.
	for i, v := range l.Noise.Grad.Data {
		if v != 3 {
			t.Errorf("noise grad[%d] = %v, want 3", i, v)
		}
	}
	if len(l.Params()) != 1 {
		t.Error("trainable noise must expose its parameter")
	}
}

func TestDropoutEvalIdentity(t *testing.T) {
	l := NewDropout(0.5, rng.New(23))
	x := randInput(24, 2, 8)
	y := l.Forward(x, false)
	if !y.AllClose(x, 0) {
		t.Error("dropout in eval mode must be the identity")
	}
}

func TestDropoutMaskConsistency(t *testing.T) {
	l := NewDropout(0.5, rng.New(25))
	x := tensor.Full(1, 1, 100)
	y := l.Forward(x, true)
	g := l.Backward(tensor.Full(1, 1, 100))
	zeros := 0
	for i := range y.Data {
		if (y.Data[i] == 0) != (g.Data[i] == 0) {
			t.Fatal("backward mask must match forward mask")
		}
		if y.Data[i] == 0 {
			zeros++
		} else if math.Abs(y.Data[i]-2) > 1e-12 {
			t.Fatalf("survivor not rescaled: %v", y.Data[i])
		}
	}
	if zeros < 25 || zeros > 75 {
		t.Errorf("zeros = %d out of 100, suspicious for p=0.5", zeros)
	}
}

func TestBasicBlockGradientsIdentityShortcut(t *testing.T) {
	r := rng.New(26)
	b := NewBasicBlock("blk", 3, 3, 1, r)
	checkLayerGradients(t, "BasicBlock/id", b, randInput(27, 2, 3, 6, 6), true)
}

func TestBasicBlockGradientsProjectionShortcut(t *testing.T) {
	r := rng.New(28)
	b := NewBasicBlock("blk", 2, 4, 2, r)
	checkLayerGradients(t, "BasicBlock/proj", b, randInput(29, 2, 2, 6, 6), true)
}

func TestBasicBlockShapes(t *testing.T) {
	r := rng.New(30)
	b := NewBasicBlock("blk", 4, 8, 2, r)
	y := b.Forward(randInput(31, 2, 4, 8, 8), false)
	want := []int{2, 8, 4, 4}
	for i, d := range want {
		if y.Shape[i] != d {
			t.Fatalf("block output shape %v, want %v", y.Shape, want)
		}
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	logits := randInput(32, 4, 5)
	labels := []int{1, 0, 4, 2}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	const eps = 1e-6
	for _, idx := range []int{0, 7, 13, 19} {
		old := logits.Data[idx]
		logits.Data[idx] = old + eps
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[idx] = old - eps
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[idx] = old
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[idx]) > 1e-6*(1+math.Abs(num)) {
			t.Errorf("CE grad[%d]: numeric %v vs analytic %v", idx, num, grad.Data[idx])
		}
	}
}

func TestSoftmaxCrossEntropyPerfectPrediction(t *testing.T) {
	logits := tensor.FromSlice([]float64{100, 0, 0, 0, 100, 0}, 2, 3)
	loss, _ := SoftmaxCrossEntropy(logits, []int{0, 1})
	if loss > 1e-6 {
		t.Errorf("loss for perfect prediction = %v", loss)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	p := Softmax(randInput(33, 5, 7))
	for i := 0; i < 5; i++ {
		s := 0.0
		for j := 0; j < 7; j++ {
			s += p.At(i, j)
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("row %d sums to %v", i, s)
		}
	}
}

func TestMSELossGradient(t *testing.T) {
	pred := randInput(34, 2, 6)
	target := randInput(35, 2, 6)
	loss, grad := MSELoss(pred, target)
	if loss < 0 {
		t.Fatal("MSE must be non-negative")
	}
	const eps = 1e-6
	for _, idx := range []int{0, 5, 11} {
		old := pred.Data[idx]
		pred.Data[idx] = old + eps
		lp, _ := MSELoss(pred, target)
		pred.Data[idx] = old - eps
		lm, _ := MSELoss(pred, target)
		pred.Data[idx] = old
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[idx]) > 1e-6*(1+math.Abs(num)) {
			t.Errorf("MSE grad[%d]: numeric %v vs analytic %v", idx, num, grad.Data[idx])
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		1, 2, 0,
		5, 1, 1,
		0, 0, 3,
	}, 3, 3)
	if got := Accuracy(logits, []int{1, 0, 2}); got != 1 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := Accuracy(logits, []int{0, 0, 2}); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	a := randInput(36, 3, 4)
	b := randInput(37, 3, 2)
	c := randInput(38, 3, 5)
	cat := ConcatFeatures([]*tensor.Tensor{a, b, c})
	if cat.Shape[0] != 3 || cat.Shape[1] != 11 {
		t.Fatalf("concat shape %v", cat.Shape)
	}
	parts := SplitFeatureGrad(cat, []int{4, 2, 5})
	if !parts[0].AllClose(a, 0) || !parts[1].AllClose(b, 0) || !parts[2].AllClose(c, 0) {
		t.Error("split(concat(x)) != x")
	}
}

func TestNetworkForwardBackwardChains(t *testing.T) {
	r := rng.New(39)
	net := NewNetwork("tiny",
		NewConv2D("c1", 1, 2, 3, 1, 1, true, r),
		NewReLU(),
		NewGlobalAvgPool(),
		NewLinear("fc", 2, 3, r),
	)
	checkLayerGradients(t, "Network", net, randInput(40, 2, 1, 5, 5), true)
}

func TestNetworkNumParams(t *testing.T) {
	r := rng.New(41)
	net := NewNetwork("n", NewLinear("fc", 4, 3, r))
	if got := net.NumParams(); got != 4*3+3 {
		t.Errorf("NumParams = %d", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rng.New(42)
	build := func() *Network {
		rr := rng.New(100) // structure init; values get overwritten by Load
		return NewNetwork("m",
			NewConv2D("c1", 1, 2, 3, 1, 1, false, rr),
			NewBatchNorm2D("bn1", 2),
			NewReLU(),
			NewGlobalAvgPool(),
			NewLinear("fc", 2, 3, rr),
		)
	}
	src := build()
	// Randomize source weights and run a training-mode forward so running
	// stats are non-trivial.
	for _, p := range src.Params() {
		r.FillNormal(p.Value.Data, 0, 1)
	}
	x := randInput(43, 4, 1, 6, 6)
	src.Forward(x, true)

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := build()
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	xs := randInput(44, 2, 1, 6, 6)
	if !dst.Forward(xs, false).AllClose(src.Forward(xs, false), 1e-12) {
		t.Error("loaded network differs from saved network in eval mode")
	}
}

func TestCopyStateFrom(t *testing.T) {
	r := rng.New(45)
	a := NewNetwork("a", NewLinear("fc", 3, 2, r))
	b := NewNetwork("b", NewLinear("fc2", 3, 2, r))
	if err := b.CopyStateFrom(a); err != nil {
		t.Fatal(err)
	}
	x := randInput(46, 2, 3)
	if !b.Forward(x, false).AllClose(a.Forward(x, false), 0) {
		t.Error("CopyStateFrom did not replicate behaviour")
	}
}

func TestLoadRejectsMissingParam(t *testing.T) {
	r := rng.New(47)
	src := NewNetwork("m", NewLinear("fc", 2, 2, r))
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewNetwork("m", NewLinear("other", 2, 2, r))
	if err := dst.Load(&buf); err == nil {
		t.Error("Load should fail when a parameter name is missing")
	}
}
