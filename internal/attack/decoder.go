package attack

import (
	"fmt"

	"ensembler/internal/data"
	"ensembler/internal/nn"
	"ensembler/internal/optim"
	"ensembler/internal/rng"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
)

// Decoder is the inverse network ~Mc,h⁻¹: it maps intermediate feature maps
// [HeadC,H,W] back to images [InC,H,W] with a convolutional stack ending in
// a sigmoid so outputs live in image range. The client's head is a stride-1
// convolution, so feature maps and images share spatial extent and no
// upsampling is needed at this split point.
type Decoder struct {
	Arch split.Arch
	Net  *nn.Network
}

// NewDecoder builds an untrained decoder for the given architecture.
func NewDecoder(arch split.Arch, r *rng.RNG) *Decoder {
	hidden := arch.HeadC * 4
	net := nn.NewNetwork("decoder",
		nn.NewConv2D("dec.conv1", arch.HeadC, hidden, 3, 1, 1, true, r),
		nn.NewLeakyReLU(0.1),
		nn.NewConv2D("dec.conv2", hidden, hidden, 3, 1, 1, true, r),
		nn.NewLeakyReLU(0.1),
		nn.NewConv2D("dec.conv3", hidden, arch.InC, 3, 1, 1, true, r),
		nn.NewSigmoid(),
	)
	return &Decoder{Arch: arch, Net: net}
}

// Reconstruct inverts a batch of observed intermediate features into images.
func (d *Decoder) Reconstruct(features *tensor.Tensor) *tensor.Tensor {
	return d.Net.Forward(features, false)
}

// TrainDecoder fits the decoder on the attacker's auxiliary images: for each
// aux image x, the input is featFn(x) (the shadow head's surrogate of the
// victim's transmitted features, treated as a constant) and the target is x
// itself, optimized with MSE + Adam.
func TrainDecoder(cfg Config, featFn func(x *tensor.Tensor) *tensor.Tensor, aux *data.Dataset) *Decoder {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed + 1)
	d := NewDecoder(cfg.Arch, r.Split())
	opt := optim.NewAdam(d.Net.Params(), cfg.DecoderLR)
	for epoch := 0; epoch < cfg.DecoderEpochs; epoch++ {
		total, batches := 0.0, 0
		for _, idxs := range aux.Batches(cfg.BatchSize, r) {
			x, _ := aux.Batch(idxs)
			f := featFn(x)
			recon := d.Net.Forward(f, true)
			loss, grad := nn.MSELoss(recon, x)
			d.Net.Backward(grad)
			opt.Step()
			total += loss
			batches++
		}
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "decoder: epoch %d/%d mse %.5f\n", epoch+1, cfg.DecoderEpochs, total/float64(batches))
		}
	}
	return d
}
