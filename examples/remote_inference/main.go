// Remote inference: the deployed form of the system. A TCP server hosts the
// N ensemble bodies (the cloud); the client keeps its head, fixed noise,
// secret selector, and tail, and performs classification over the wire. The
// example verifies the remote result matches local inference bit-for-bit and
// prints the measured timing/byte breakdown — the empirical analogue of
// Table III at this scale.
//
//	go run ./examples/remote_inference
package main

import (
	"fmt"
	"log"
	"net"

	"ensembler/internal/comm"
	"ensembler/internal/data"
	"ensembler/internal/ensemble"
	"ensembler/internal/nn"
	"ensembler/internal/split"
)

func main() {
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, Train: 256, Aux: 16, Test: 64, Seed: 3})
	cfg := ensemble.Config{
		Arch: split.DefaultArch(data.CIFAR10Like), N: 4, P: 2, Sigma: 0.05, Lambda: 0.5, Seed: 4,
		Stage1:      split.TrainOptions{Epochs: 4, BatchSize: 32, LR: 0.05},
		Stage3:      split.TrainOptions{Epochs: 6, BatchSize: 32, LR: 0.05},
		Stage1Noise: true,
	}
	fmt.Println("training a small Ensembler pipeline...")
	e := ensemble.Train(cfg, sp.Train, nil)

	// Cloud side: only the bodies travel to the server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go comm.NewServer(e.Bodies()).Serve(ln)
	fmt.Printf("server hosting %d bodies at %s\n", cfg.N, ln.Addr())

	// Edge side: head, noise, secret selector, tail.
	client, err := comm.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.ComputeFeatures = e.ClientFeatures
	client.Select = e.Selector.Apply
	client.Tail = e.Tail

	idxs := make([]int, 32)
	for i := range idxs {
		idxs[i] = i
	}
	x, labels := sp.Test.Batch(idxs)
	logits, timing, err := client.Infer(x)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("remote batch of %d images: accuracy %.3f\n", len(idxs), nn.Accuracy(logits, labels))
	if logits.AllClose(e.Predict(x), 1e-9) {
		fmt.Println("remote result matches local pipeline exactly ✓")
	}
	fmt.Printf("timing: client %.1fms | network+server round trip %.1fms\n",
		timing.Client.Seconds()*1e3, timing.RoundTrip.Seconds()*1e3)
	fmt.Printf("wire:   %.1f KiB up (features), %.1f KiB down (%d bodies × features)\n",
		float64(timing.BytesUp)/1024, float64(timing.BytesDown)/1024, cfg.N)
	fmt.Printf("the %v secret selection never appeared on the wire.\n", e.Selector.Indices)
}
