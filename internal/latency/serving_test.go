package latency

import (
	"math"
	"testing"
)

func servingBase() Scenario {
	sc := Ensembler(10)
	return sc
}

func TestSingleClientMatchesRoundTrip(t *testing.T) {
	est := EstimateServing(ServingScenario{Base: servingBase(), Workers: 4, Clients: 1, Batch: 1})
	want := 1 / est.RequestSeconds
	if math.Abs(est.ThroughputRPS-want)/want > 1e-12 {
		t.Errorf("single client throughput %.6f, want 1/rtt = %.6f", est.ThroughputRPS, want)
	}
}

func TestConcurrencyRaisesThroughputUntilSaturation(t *testing.T) {
	const workers = 4
	sweep := ConcurrencySweep(servingBase(), workers, 1, []int{1, 2, 4, 8, 16, 64})
	for i := 1; i < len(sweep); i++ {
		if sweep[i].ThroughputRPS < sweep[i-1].ThroughputRPS-1e-12 {
			t.Errorf("throughput decreased from %v to %v", sweep[i-1], sweep[i])
		}
	}
	// At saturation the pool bound is active: X = workers / serverTime.
	last := sweep[len(sweep)-1]
	base := servingBase()
	base.Batch = 1
	serverBound := float64(workers) / Run(base).Server
	if math.Abs(last.ThroughputRPS-serverBound)/serverBound > 1e-9 {
		t.Errorf("saturated throughput %.4f, want worker bound %.4f", last.ThroughputRPS, serverBound)
	}
	if math.Abs(last.Utilization-1) > 1e-9 {
		t.Errorf("saturated utilization %.4f, want 1", last.Utilization)
	}
}

func TestConcurrencySpeedupExceedsTwo(t *testing.T) {
	// The acceptance regime of the serving subsystem: 8 concurrent clients
	// against a 4-worker replicated pool must be predicted at >2× a single
	// connection.
	s := ConcurrencySpeedup(servingBase(), 4, 1, 8)
	if s <= 2 {
		t.Errorf("predicted concurrency speedup %.2f, want > 2", s)
	}
}

func TestBatchingRaisesImageThroughput(t *testing.T) {
	sweep := BatchingSweep(servingBase(), 4, 8, []int{1, 4, 16, 64})
	for i := 1; i < len(sweep); i++ {
		if sweep[i].ThroughputIPS < sweep[i-1].ThroughputIPS-1e-12 {
			t.Errorf("image throughput decreased from %v to %v", sweep[i-1], sweep[i])
		}
	}
	if sweep[len(sweep)-1].ThroughputIPS <= sweep[0].ThroughputIPS {
		t.Error("batching must raise image throughput over single-image requests")
	}
}

func TestEstimateServingDefaults(t *testing.T) {
	est := EstimateServing(ServingScenario{Base: servingBase()})
	if est.ThroughputRPS <= 0 || est.RequestSeconds <= 0 {
		t.Errorf("defaulted estimate degenerate: %+v", est)
	}
}
