package data

import (
	"testing"
	"testing/quick"

	"ensembler/internal/metrics"
	"ensembler/internal/rng"
)

func TestGenerateShapesAndRanges(t *testing.T) {
	for _, kind := range []Kind{CIFAR10Like, CIFAR100Like, CelebALike} {
		sp := Generate(Config{Kind: kind, Train: 40, Aux: 20, Test: 20, Seed: 1})
		for _, ds := range []*Dataset{sp.Train, sp.Aux, sp.Test} {
			if ds.Images.Shape[1] != 3 || ds.Images.Shape[2] != 16 || ds.Images.Shape[3] != 16 {
				t.Fatalf("%s: shape %v", ds.Name, ds.Images.Shape)
			}
			for _, v := range ds.Images.Data {
				if v < 0 || v > 1 {
					t.Fatalf("%s: pixel %v out of [0,1]", ds.Name, v)
				}
			}
			if len(ds.Labels) != ds.Len() {
				t.Fatalf("%s: %d labels for %d images", ds.Name, len(ds.Labels), ds.Len())
			}
			for _, l := range ds.Labels {
				if l < 0 || l >= ds.Classes {
					t.Fatalf("%s: label %d out of range", ds.Name, l)
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Kind: CIFAR10Like, Train: 16, Aux: 8, Test: 8, Seed: 7})
	b := Generate(Config{Kind: CIFAR10Like, Train: 16, Aux: 8, Test: 8, Seed: 7})
	if !a.Train.Images.AllClose(b.Train.Images, 0) {
		t.Error("same seed must reproduce the same images")
	}
	c := Generate(Config{Kind: CIFAR10Like, Train: 16, Aux: 8, Test: 8, Seed: 8})
	if a.Train.Images.AllClose(c.Train.Images, 1e-9) {
		t.Error("different seeds should give different images")
	}
}

func TestSplitsAreDisjointStreams(t *testing.T) {
	sp := Generate(Config{Kind: CIFAR10Like, Train: 10, Aux: 10, Test: 10, Seed: 3})
	// Train[0] and Aux[0] share a label (both i%classes) but must not be the
	// same image.
	if sp.Train.Image(0).AllClose(sp.Aux.Image(0), 1e-9) {
		t.Error("train and aux must be sample-disjoint")
	}
}

func TestClassesAreBalanced(t *testing.T) {
	sp := Generate(Config{Kind: CIFAR10Like, Train: 100, Aux: 10, Test: 10, Seed: 4})
	counts := map[int]int{}
	for _, l := range sp.Train.Labels {
		counts[l]++
	}
	for k := 0; k < 10; k++ {
		if counts[k] != 10 {
			t.Errorf("class %d has %d samples, want 10", k, counts[k])
		}
	}
}

// Property: same-class samples are more similar (SSIM) to each other than the
// average cross-class pair — the class structure a model can learn.
func TestSameClassMoreSimilar(t *testing.T) {
	sp := Generate(Config{Kind: CIFAR10Like, Train: 60, Aux: 10, Test: 10, Seed: 5})
	ds := sp.Train
	same, sameN := 0.0, 0
	diff, diffN := 0.0, 0
	for i := 0; i < 30; i++ {
		for j := i + 1; j < 30; j++ {
			s := metrics.SSIM(ds.Image(i), ds.Image(j))
			if ds.Labels[i] == ds.Labels[j] {
				same += s
				sameN++
			} else {
				diff += s
				diffN++
			}
		}
	}
	if same/float64(sameN) <= diff/float64(diffN) {
		t.Errorf("same-class SSIM %.3f should exceed cross-class %.3f",
			same/float64(sameN), diff/float64(diffN))
	}
}

func TestFacesIdentityStructure(t *testing.T) {
	sp := Generate(Config{Kind: CelebALike, Train: 64, Aux: 8, Test: 8, Seed: 6})
	ds := sp.Train
	same, sameN := 0.0, 0
	diff, diffN := 0.0, 0
	for i := 0; i < 32; i++ {
		for j := i + 1; j < 32; j++ {
			s := metrics.SSIM(ds.Image(i), ds.Image(j))
			if ds.Labels[i] == ds.Labels[j] {
				same += s
				sameN++
			} else {
				diff += s
				diffN++
			}
		}
	}
	if same/float64(sameN) <= diff/float64(diffN) {
		t.Errorf("same-identity SSIM %.3f should exceed cross-identity %.3f",
			same/float64(sameN), diff/float64(diffN))
	}
}

func TestBatchGathersCorrectSamples(t *testing.T) {
	sp := Generate(Config{Kind: CIFAR10Like, Train: 20, Aux: 4, Test: 4, Seed: 9})
	x, labels := sp.Train.Batch([]int{3, 17, 5})
	if x.Shape[0] != 3 {
		t.Fatalf("batch shape %v", x.Shape)
	}
	for bi, i := range []int{3, 17, 5} {
		if labels[bi] != sp.Train.Labels[i] {
			t.Errorf("label %d mismatch", bi)
		}
		if !x.SampleView(bi).AllClose(sp.Train.Image(i), 0) {
			t.Errorf("sample %d mismatch", bi)
		}
	}
}

// Property: Batches covers every index exactly once.
func TestBatchesPartition(t *testing.T) {
	sp := Generate(Config{Kind: CIFAR10Like, Train: 33, Aux: 4, Test: 4, Seed: 10})
	f := func(seed int64, bsRaw uint8) bool {
		bs := int(bsRaw%16) + 1
		batches := sp.Train.Batches(bs, rng.New(seed))
		seen := map[int]int{}
		for _, b := range batches {
			if len(b) > bs {
				return false
			}
			for _, i := range b {
				seen[i]++
			}
		}
		if len(seen) != 33 {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCustomSize(t *testing.T) {
	sp := Generate(Config{Kind: CelebALike, H: 24, W: 20, Train: 8, Aux: 4, Test: 4, Seed: 11})
	if sp.Train.Images.Shape[2] != 24 || sp.Train.Images.Shape[3] != 20 {
		t.Errorf("custom size shape %v", sp.Train.Images.Shape)
	}
}

func TestKindStrings(t *testing.T) {
	if CIFAR10Like.String() != "cifar10-like" || CelebALike.Classes() != 8 {
		t.Error("Kind metadata wrong")
	}
}
