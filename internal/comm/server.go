package comm

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ensembler/internal/nn"
	"ensembler/internal/privacy"
	"ensembler/internal/tensor"
	"ensembler/internal/trace"
)

// DefaultMaxBatch caps how many inputs one batched request may carry unless
// overridden with WithMaxBatch.
const DefaultMaxBatch = 64

// DefaultDrainTimeout bounds how long a graceful shutdown waits for
// in-flight responses to flush before force-closing connections.
const DefaultDrainTimeout = 5 * time.Second

// ServedModel is one immutable published version of a model, as the server
// sees it. Seq must change whenever the underlying weights or identity
// change (a publish, rotation, or reload): it is the workers' replica cache
// key, so a stale Seq means a worker keeps serving old weights. NewReplica
// must be safe to call concurrently and return bodies no other goroutine
// touches.
type ServedModel interface {
	Name() string
	Version() int
	Seq() uint64
	NewReplica() []*nn.Network
}

// ModelProvider resolves the (model, version) pair a request carries to a
// live model. model "" asks for the provider's default and version 0 for the
// current version — the fallback that keeps header-less (pre-registry)
// clients working. Resolve sits on the hot path: it runs once per request
// and must not block on locks held across slow work.
type ModelProvider interface {
	Resolve(model string, version int) (ServedModel, error)
}

// ServerOption configures a Server at construction time.
type ServerOption func(*serverOptions)

type serverOptions struct {
	workers   int
	maxBatch  int
	drain     time.Duration
	replicate func() []*nn.Network
	metrics   *ServerMetrics  // nil: no telemetry, zero hot-path cost
	observer  FeatureObserver // nil: no feature mirroring, zero hot-path cost
	tracer    *trace.Tracer   // nil: no tracing, zero hot-path cost
	guard     *privacy.Guard  // nil: no budget accounting, zero hot-path cost
	precision Precision       // compute element type; PrecisionF64 is the zero value

	// Continuous batching (see dispatch.go). dispatch gates the whole
	// subsystem: WithBatchWindow or WithMaxQueue turns it on.
	dispatch    bool
	window      time.Duration
	maxQueue    int
	maxCoalesce int
}

// WithWorkers bounds the compute worker pool. For a single-model server
// (NewServer) values above 1 only take effect together with WithReplicas:
// without independent body replicas the layer caches make concurrent passes
// over one body unsafe, so the pool is clamped to a single worker. A
// provider-backed server (NewModelServer) replicates through the provider
// and takes the value as given.
func WithWorkers(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.workers = n
		}
	}
}

// PinKernelParallelism applies the serving-path parallelism invariant for a
// process about to run a worker pool of the given size: a multi-worker pool
// is the one level of parallelism, so kernel-level goroutines are disabled
// (tensor.SetKernelParallelism(1)) — nesting them under the pool only
// oversubscribes the cores the pool already saturates, the regression
// behind BENCH_2026-07-30's 0.94× concurrent "speedup". A single-worker
// pool leaves the kernels free to parallelize, since they are then the only
// parallelism available. The knob is process-global: serving binaries call
// this once at startup; harnesses that later run training in the same
// process restore with tensor.SetKernelParallelism(0).
func PinKernelParallelism(workers int) {
	if workers > 1 {
		tensor.SetKernelParallelism(1)
	}
}

// WithMaxBatch caps the number of inputs a single batched request may carry.
func WithMaxBatch(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.maxBatch = n
		}
	}
}

// WithDrainTimeout bounds how long a graceful shutdown waits for in-flight
// responses to flush before force-closing connections (a client that stops
// reading its responses must not be able to hold Serve open forever).
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d > 0 {
			o.drain = d
		}
	}
}

// WithBatchWindow enables the continuous-batching dispatcher with the given
// batch window: after the dispatcher sees a batch's first request it waits d
// before closing the batch, so requests arriving on other connections within
// the window share one stacked forward pass. Zero keeps the dispatcher (and
// its admission control) but coalesces only what is already queued — no
// added latency. Windows are clamped to one second; a longer window is a
// latency bug, and the graceful-shutdown drain must be able to out-wait it.
func WithBatchWindow(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d < 0 {
			d = 0
		}
		if d > maxBatchWindow {
			d = maxBatchWindow
		}
		o.dispatch = true
		o.window = d
	}
}

// WithMaxQueue bounds the continuous-batching intake queue (enabling the
// dispatcher if WithBatchWindow has not): once n requests are queued across
// all connections, admission control sheds — the newest request of the
// longest per-connection queue — with an ErrOverloaded response instead of
// queueing without bound. Defaults to DefaultMaxQueue when the dispatcher is
// on.
func WithMaxQueue(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.dispatch = true
			o.maxQueue = n
		}
	}
}

// WithMaxCoalesce caps how many queued requests the dispatcher stacks into
// one forward pass. Defaults to the WithMaxBatch cap, keeping a coalesced
// batch no larger than what a single client-batched request may carry.
func WithMaxCoalesce(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.maxCoalesce = n
		}
	}
}

// WithReplicas supplies a factory producing an independent replica of the N
// hosted bodies (identical weights, private forward caches) for a
// single-model server. Each worker beyond the first owns one replica set,
// which is what lets requests from different connections run truly in
// parallel. Ignored by NewModelServer, whose provider replicates per model.
func WithReplicas(f func() []*nn.Network) ServerOption {
	return func(o *serverOptions) { o.replicate = f }
}

// Server hosts ensemble bodies for remote clients behind a bounded worker
// pool, resolving every request through a ModelProvider. Construct with
// NewServer (fixed bodies) or NewModelServer (registry-backed, hot-swap
// capable), then call Serve; Serve may be called at most once per Server.
type Server struct {
	provider ModelProvider
	opts     serverOptions

	jobs chan *job

	// Continuous batching (nil / nil channel when not enabled): handlers
	// submit decoded jobs to the dispatcher instead of s.jobs, and workers
	// drain coalesced batches from batches alongside direct jobs.
	dispatcher *dispatcher
	batches    chan *dispatchBatch

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	// syncMu guards syncReplicas, the replica cache of the synchronous
	// process entry point (tests and embedding callers); pool workers each
	// own a private cache instead.
	syncMu       sync.Mutex
	syncReplicas *replicaCache
}

// job is one request's full serving context: the decoded request, the reply
// channel the pool answers on, and the request-scoped arena plus reusable
// slice storage that make the steady-state loop allocation-free. A job is
// recycled per connection — the reader draws one from the free list, the
// writer resets and returns it after the response bytes leave the process —
// so at pipelining depth d a connection owns d jobs, total.
type job struct {
	req   Request
	resp  Response
	reply chan *Response

	// arena backs the binary-decoded request tensors and every response
	// tensor; reset by the connection writer once the response is encoded.
	arena tensor.Arena

	feats   []*tensor.Tensor   // reusable Response.Features storage
	inputs  []*tensor.Tensor   // reusable decoded Request.Inputs storage
	outs    []*tensor.Tensor   // reusable per-body output list
	outputs [][]*tensor.Tensor // reusable Response.Outputs grid
	rows    []int              // reusable per-input row counts
	shape   [maxWireRank]int   // scratch for composing output shapes

	// Float32 serving context (see server32.go), populated only on a
	// PrecisionF32 server. arena32 backs f32-decoded request tensors and f32
	// response payloads; f32Resp routes the encoder to feats32/outputs32
	// instead of the float64 Response fields.
	arena32   tensor.Arena32
	feat32    *tensor.Tensor32     // f32-decoded Request.Features
	inputs32  []*tensor.Tensor32   // reusable f32-decoded Request.Inputs storage
	feats32   []*tensor.Tensor32   // reusable f32 response features storage
	outs32    []*tensor.Tensor32   // reusable f32 per-body output list
	outputs32 [][]*tensor.Tensor32 // reusable f32 response outputs grid
	f32Resp   bool

	// Privacy-budget context, populated only when the server has a budget
	// guard. account is the connection's ledger account (resolved once at
	// negotiate time and stamped per request); noiseSigma is this request's
	// escalation-noise verdict; rng is the job's private noise state, seeded
	// lazily and kept across resets so successive noised responses draw a
	// fresh stream.
	account    *privacy.Account
	noiseSigma float64
	rng        uint64

	// Tracing context, populated only when the server has a tracer (see
	// internal/trace). wireTrace is the trace context the request arrived
	// with; traced marks that it arrived on a traced frame whose response
	// must echo the ID. decodeAt/decodeDur are the codec's parse timing,
	// queuedAt the intake hand-off timestamp, and tr the leg's span storage
	// — fixed-size and recycled with the job, so tracing allocates nothing.
	wireTrace trace.Context
	traced    bool
	decodeAt  time.Time
	decodeDur time.Duration
	queuedAt  time.Time
	tr        trace.Active
}

func newJob() *job { return &job{reply: make(chan *Response, 1)} }

// reset reclaims the job for the next request. Must only run after the
// response has been fully encoded: it invalidates every arena tensor.
func (j *job) reset() {
	j.req = Request{}
	j.resp = Response{}
	j.feats = j.feats[:0]
	j.inputs = j.inputs[:0]
	j.outs = j.outs[:0]
	j.outputs = j.outputs[:0]
	j.rows = j.rows[:0]
	j.arena.Reset()
	j.feat32 = nil
	j.inputs32 = j.inputs32[:0]
	j.feats32 = j.feats32[:0]
	j.outs32 = j.outs32[:0]
	j.outputs32 = j.outputs32[:0]
	j.f32Resp = false
	j.arena32.Reset()
	j.account = nil
	j.noiseSigma = 0
	j.wireTrace = trace.Context{}
	j.traced = false
	j.decodeAt, j.queuedAt = time.Time{}, time.Time{}
	j.decodeDur = 0
	j.tr.Reset()
}

// staticModel adapts a fixed body slice to the ModelProvider contract: one
// unnamed model, version 0, epoch never changing. The first replica claim
// hands out the primary bodies (matching the pre-provider behavior where
// worker zero served the bodies the server was constructed with); later
// claims go through the replicate factory.
type staticModel struct {
	bodies    []*nn.Network
	replicate func() []*nn.Network
	claimed   atomic.Bool
}

func (m *staticModel) Resolve(model string, version int) (ServedModel, error) {
	if model != "" {
		return nil, fmt.Errorf("comm: unknown model %q (this server hosts a single unnamed model)", model)
	}
	if version != 0 {
		return nil, fmt.Errorf("comm: version pinning (v%d requested) requires a registry-backed server", version)
	}
	return m, nil
}

func (m *staticModel) Name() string   { return "" }
func (m *staticModel) Version() int   { return 0 }
func (m *staticModel) Seq() uint64    { return 0 }
func (m *staticModel) NumBodies() int { return len(m.bodies) }

func (m *staticModel) NewReplica() []*nn.Network {
	if m.replicate == nil || m.claimed.CompareAndSwap(false, true) {
		// Single-worker servers (replicate == nil clamps the pool to one
		// worker) and the first claimer share the primary bodies.
		return m.bodies
	}
	bodies := m.replicate()
	if len(bodies) != len(m.bodies) {
		panic(fmt.Sprintf("comm: replica factory returned %d bodies, want %d", len(bodies), len(m.bodies)))
	}
	return bodies
}

// NewServer creates a single-model server over the given bodies. Without
// options it behaves like a single-worker pool: one request computes at a
// time, with the per-body passes still fanned out across goroutines.
func NewServer(bodies []*nn.Network, opts ...ServerOption) *Server {
	if len(bodies) == 0 {
		panic("comm: server needs at least one body")
	}
	o := serverOptions{workers: runtime.GOMAXPROCS(0), maxBatch: DefaultMaxBatch, drain: DefaultDrainTimeout}
	for _, opt := range opts {
		opt(&o)
	}
	if o.replicate == nil {
		o.workers = 1
	}
	return newServer(&staticModel{bodies: bodies, replicate: o.replicate}, o)
}

// NewModelServer creates a server that resolves every request's
// (model, version) header through the provider — typically a
// registry.Registry. Publishing a new version or rotating a selector in the
// provider swaps what subsequent requests compute against with zero
// downtime: in-flight requests finish on the epoch they resolved, and each
// worker re-clones its replicas the first time it sees a new epoch.
func NewModelServer(p ModelProvider, opts ...ServerOption) *Server {
	if p == nil {
		panic("comm: server needs a model provider")
	}
	o := serverOptions{workers: runtime.GOMAXPROCS(0), maxBatch: DefaultMaxBatch, drain: DefaultDrainTimeout}
	for _, opt := range opts {
		opt(&o)
	}
	return newServer(p, o)
}

func newServer(p ModelProvider, o serverOptions) *Server {
	s := &Server{
		provider:     p,
		opts:         o,
		jobs:         make(chan *job),
		conns:        map[net.Conn]struct{}{},
		syncReplicas: newReplicaCache(o.precision),
	}
	if o.dispatch {
		if s.opts.maxQueue <= 0 {
			s.opts.maxQueue = DefaultMaxQueue
		}
		if s.opts.maxCoalesce <= 0 || s.opts.maxCoalesce > s.opts.maxBatch {
			s.opts.maxCoalesce = s.opts.maxBatch
		}
		s.dispatcher = newDispatcher(s.opts.window, s.opts.maxQueue, s.opts.maxCoalesce, s.opts.metrics, s.opts.tracer)
		s.batches = make(chan *dispatchBatch)
	}
	return s
}

// Workers reports the effective size of the compute pool.
func (s *Server) Workers() int { return s.opts.workers }

// Serve accepts connections until ctx is cancelled or the listener fails,
// handling each client in its own goroutine. On cancellation it stops
// accepting, lets requests already decoded finish, flushes their responses,
// closes every connection, and returns nil. Clients that stop reading their
// responses are force-closed after the drain timeout (WithDrainTimeout) so
// shutdown always completes.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	stop := make(chan struct{})
	var workers sync.WaitGroup
	for i := 0; i < s.opts.workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			s.worker(stop)
		}()
	}
	dispatchStop := make(chan struct{})
	var batcher sync.WaitGroup
	if s.dispatcher != nil {
		batcher.Add(1)
		go func() {
			defer batcher.Done()
			s.dispatcher.run(s.batches, dispatchStop)
		}()
	}

	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
		case <-watchDone:
		}
	}()

	var handlers sync.WaitGroup
	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			acceptErr = err
			break
		}
		// Fault site: an injected accept error drops the fresh connection
		// (the peer sees an immediate close) without poisoning the listener.
		if err := fpAccept.Inject(); err != nil {
			conn.Close()
			continue
		}
		s.track(conn)
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
	close(watchDone)

	// Unblock every reader: requests already decoded still reach the pool
	// and their responses still flush, but no new requests are read. If a
	// client refuses to drain its responses, force-close it after the
	// timeout rather than hanging shutdown on its full send buffer.
	s.interruptReads()
	drained := make(chan struct{})
	go func() {
		handlers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(s.opts.drain):
		s.forceCloseConns()
		<-drained
	}
	// Handlers have drained: every submitted job was replied, so the
	// dispatcher intake is provably empty and the batcher can stop before
	// the workers it feeds.
	close(dispatchStop)
	batcher.Wait()
	close(stop)
	workers.Wait()

	if ctx.Err() != nil {
		return nil // graceful shutdown
	}
	return acceptErr
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// interruptReads expires the read deadline on every live connection so
// blocked decoders return; writes are unaffected, letting in-flight replies
// drain.
func (s *Server) interruptReads() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.SetReadDeadline(time.Unix(1, 0))
	}
}

// forceCloseConns tears down every connection still open after the drain
// timeout, failing any write its handler is blocked on.
func (s *Server) forceCloseConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.SetDeadline(time.Unix(1, 0))
		conn.Close()
	}
}

// serverCodec is one connection's wire protocol from the server side,
// chosen by negotiate: the binary codec for clients that open with the
// hello magic, gob for everything else (the legacy fallback).
type serverCodec interface {
	// readRequest decodes the next request into j (arena-backed on the
	// binary path), recording the job's wire trace context and decode
	// timing where the protocol carries them.
	readRequest(j *job) error
	// writeResponse encodes one response (echoing j's trace context where
	// the protocol carries one); it must not retain resp or its tensors
	// past the call (the writer recycles them immediately after).
	writeResponse(j *job, resp *Response) error
}

type gobServerCodec struct {
	dec *gob.Decoder
	enc *gob.Encoder
}

func (c *gobServerCodec) readRequest(j *job) error {
	if err := fpFrameRead.Inject(); err != nil {
		return err
	}
	j.req = Request{} // gob leaves absent fields untouched; never inherit the previous request's
	return c.dec.Decode(&j.req)
}

func (c *gobServerCodec) writeResponse(j *job, resp *Response) error { return c.enc.Encode(resp) }

type binServerCodec struct {
	binFramer
	// timing is on when the server has a tracer: readRequest records the
	// parse timestamps the handler turns into decode spans.
	timing bool
	// traceOK marks a version ≥3 connection, the only kind whose responses
	// may carry traced frames.
	traceOK bool
	// f32compute marks a PrecisionF32 server: requests decode into the job's
	// f32 arena and successful responses encode from its f32 payload.
	f32compute bool
}

func (c *binServerCodec) readRequest(j *job) error {
	if err := fpFrameRead.Inject(); err != nil {
		return err
	}
	body, err := c.readBody()
	if err != nil {
		return err
	}
	var t0 time.Time
	if c.timing {
		t0 = time.Now()
	}
	j.req = Request{}
	if c.f32compute {
		if err := parseRequestInto32(body, &j.req, j, &j.wireTrace); err != nil {
			return err
		}
	} else if err := parseRequestInto(body, &j.req, (*arenaAlloc)(&j.arena), j, &j.wireTrace); err != nil {
		return err
	}
	if c.timing {
		j.decodeAt = t0
		j.decodeDur = time.Since(t0)
	}
	if !c.traceOK {
		// A traced frame on a connection that never negotiated v3 is
		// tolerated but its context is dropped, so the response stays in the
		// negotiated dialect.
		j.wireTrace = trace.Context{}
	}
	j.traced = j.wireTrace.ID != 0
	return nil
}

func (c *binServerCodec) writeResponse(j *job, resp *Response) error {
	var echo uint64
	if j != nil && j.traced {
		echo = j.wireTrace.ID
	}
	var buf []byte
	var err error
	if j != nil && j.f32Resp {
		buf, err = appendResponse32(c.frameStart(), j, resp, c.f32, c.code, echo)
	} else {
		buf, err = appendResponse(c.frameStart(), resp, c.f32, c.code, echo)
	}
	c.encBuf = buf
	if err != nil {
		return err
	}
	if out, ok := fpFrameWrite.Fire(); ok {
		if handled, err := injectFrameWrite(c.w, buf, out); handled {
			return err
		}
	}
	return writeFrame(c.w, buf)
}

// negotiate sniffs the first bytes of a fresh connection: the binary hello
// magic selects the binary codec (and acks min(client, server) version,
// accepted flags, and the continuous-batching window advice); anything else
// is a legacy gob client, served by the gob codec over byte-identical
// framing. The returned clientID is the v4-declared identity ("" for every
// pre-v4 and gob peer, which the budget guard buckets by address instead).
func (s *Server) negotiate(conn net.Conn, br *bufio.Reader) (serverCodec, string, error) {
	if err := fpHello.Inject(); err != nil {
		return nil, "", err
	}
	peek, err := br.Peek(4)
	if err != nil {
		return nil, "", err
	}
	if [4]byte(peek) != wireMagic {
		// The gob encoder writes through the frame-write fault site so torn
		// responses are injectable on the legacy path too.
		return &gobServerCodec{dec: gob.NewDecoder(br), enc: gob.NewEncoder(faultWriter{w: conn})}, "", nil
	}
	var hello [8]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		return nil, "", err
	}
	if hello[4] < 1 {
		return nil, "", fmt.Errorf("comm: client hello names unsupported wire version %d", hello[4])
	}
	version := min(hello[4], byte(wireVersion))
	flags := hello[5] & wireFlagF32
	// The client-ID flag is honored only from a hello that itself speaks v4:
	// echoing it to an older (or flag-forging) client would promise to read
	// an ID frame the peer will never send.
	wantID := version >= 4 && hello[5]&wireFlagClientID != 0
	if wantID {
		flags |= wireFlagClientID
	}
	ack := helloAckBytes(version, flags, windowAdviceMs(s.opts.window))
	if _, err := conn.Write(ack[:]); err != nil {
		return nil, "", err
	}
	var clientID string
	if wantID {
		// The accepted flag obliges the client to send exactly one client-ID
		// frame before any request; a malformed one drops the connection.
		if clientID, err = readClientIDFrame(br); err != nil {
			return nil, "", err
		}
	}
	return &binServerCodec{
		binFramer:  binFramer{w: conn, r: br, f32: flags&wireFlagF32 != 0, code: version >= 2},
		timing:     s.opts.tracer != nil,
		traceOK:    version >= 3,
		f32compute: s.opts.precision == PrecisionF32,
	}, clientID, nil
}

// handle processes one client connection until it closes or the server
// shuts down. Requests pipeline: a reader decodes and submits to the worker
// pool while a writer flushes responses in request order. Jobs (request
// context, arena, reply channel) recycle through the free list, so a
// connection's steady state decodes, computes, and encodes without heap
// allocation on the binary wire.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	codec, clientID, err := s.negotiate(conn, br)
	if err != nil {
		return
	}

	// Budget identity resolves once per connection: the declared v4 client
	// ID, or the peer's address bucket. Every request on this connection
	// charges the same account.
	var acct *privacy.Account
	if g := s.opts.guard; g != nil {
		id := clientID
		if id == "" {
			id = addrBucket(conn.RemoteAddr())
		}
		acct = g.AccountFor(id)
	}

	// With continuous batching on, this connection owns one dispatcher
	// queue. It unregisters only after the writer has drained every reply
	// (the deferred call runs after writer.Wait()), at which point the queue
	// is empty by construction.
	var cq *connQueue
	if s.dispatcher != nil {
		cq = s.dispatcher.register()
		defer s.dispatcher.unregister(cq)
	}

	// pending preserves request order across the concurrent pool: the writer
	// awaits each job's reply in FIFO order. free returns fully written jobs
	// to the reader.
	pending := make(chan *job, 32)
	free := make(chan *job, 64)
	tr := s.opts.tracer
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		failed := false
		for j := range pending {
			resp := <-j.reply
			if !failed {
				var encStart time.Time
				if tr != nil {
					encStart = time.Now()
				}
				if err := codec.writeResponse(j, resp); err != nil {
					// The client is gone; closing the conn unblocks the
					// reader, and draining keeps submitted jobs from leaking.
					failed = true
					conn.Close()
				} else if tr != nil {
					tr.Span(&j.tr, trace.StageEncode, encStart, time.Since(encStart))
				}
			}
			// The leg ends when its bytes leave (or the client is gone). A
			// shed is not an error here — it retains via its own flag.
			if tr != nil {
				tr.Finish(&j.tr, failed || (resp.Err != "" && resp.Code != CodeOverloaded))
			}
			j.reset()
			select {
			case free <- j:
			default: // reader gone or list full; let the job be collected
			}
		}
	}()

	for {
		var j *job
		select {
		case j = <-free:
		default:
			j = newJob()
		}
		if err := codec.readRequest(j); err != nil {
			break // client closed, protocol error, or shutdown deadline
		}
		j.account = acct
		if tr != nil {
			// The leg starts when the request's bytes were in hand: decode
			// counts against it, the blocking read before it does not. Gob
			// requests have no parse timing and simply start now.
			tr.BeginAt(&j.tr, j.wireTrace, j.decodeAt)
			if j.decodeDur > 0 {
				tr.Span(&j.tr, trace.StageDecode, j.decodeAt, j.decodeDur)
			}
			j.queuedAt = time.Now()
		}
		pending <- j
		// The pool (and, when batching, the dispatcher) outlives every
		// handler: Serve joins handlers before stopping either, so an
		// unconditional hand-off cannot deadlock and a request that was
		// decoded always gets an answer — computed or honestly shed — even
		// mid-shutdown, honoring the drain guarantee without racing
		// ctx.Done against a free worker.
		if cq != nil {
			s.dispatcher.submit(cq, j)
		} else {
			s.jobs <- j
		}
	}
	close(pending)
	writer.Wait()
}

// maxWorkerReplicas bounds one worker's replica cache. Each live epoch a
// worker serves costs one entry, so the bound is hit only when many models
// (or pinned versions) rotate through a single worker; eviction then retires
// the least-recently-used replica and the next request for it re-clones.
const maxWorkerReplicas = 16

// workerReplica is one worker's private replica of one model epoch, with
// one inference scratch per body: the scratch is as private as the replica
// (one goroutine computes on it at a time) and holds every activation
// buffer a body pass needs, so steady-state requests allocate nothing.
type workerReplica struct {
	seq       uint64
	bodies    []*nn.Network
	scratches []*nn.Scratch
	lastUsed  uint64 // worker-local request counter for LRU eviction

	// Float32 compilation of the same replica, populated on a PrecisionF32
	// server: each cloned body narrowed once to an nn.Net32 with its own f32
	// scratch. The f64 bodies stay alive as the compile source (AdditiveNoise
	// resample mode draws through their worker-private RNG state).
	bodies32    []*nn.Net32
	scratches32 []*nn.Scratch32
}

// epochKey identifies one model epoch in a worker's replica cache. A struct
// key keeps the per-request lookup allocation-free (the old formatted-string
// key cost one heap allocation per request).
type epochKey struct {
	name string
	seq  uint64
}

// replicaCache is one worker's private replicas, keyed by epoch (name, seq)
// so mixed pinned-version and current-version traffic on one model each
// keep their own replica instead of thrashing a shared slot with full
// re-clones per request.
type replicaCache struct {
	entries   map[epochKey]*workerReplica
	tick      uint64
	precision Precision
}

func newReplicaCache(p Precision) *replicaCache {
	return &replicaCache{entries: map[epochKey]*workerReplica{}, precision: p}
}

// replicaFor returns the cached replica for the epoch, cloning (and evicting
// the least recently used entry past the cap) on first sight.
func (rc *replicaCache) replicaFor(m ServedModel) (*workerReplica, error) {
	rc.tick++
	key := epochKey{name: m.Name(), seq: m.Seq()}
	if wr := rc.entries[key]; wr != nil {
		wr.lastUsed = rc.tick
		return wr, nil
	}
	bodies, err := cloneReplica(m)
	if err != nil {
		return nil, err
	}
	scratches := make([]*nn.Scratch, len(bodies))
	for i := range scratches {
		scratches[i] = nn.NewScratch()
	}
	wr := &workerReplica{seq: m.Seq(), bodies: bodies, scratches: scratches, lastUsed: rc.tick}
	if rc.precision == PrecisionF32 {
		wr.bodies32 = make([]*nn.Net32, len(bodies))
		wr.scratches32 = make([]*nn.Scratch32, len(bodies))
		for i, b := range bodies {
			n32, err := nn.CompileF32(b)
			if err != nil {
				return nil, err
			}
			wr.bodies32[i] = n32
			wr.scratches32[i] = nn.NewScratch32()
		}
	}
	rc.entries[key] = wr
	for len(rc.entries) > maxWorkerReplicas {
		var lruKey epochKey
		found, lru := false, uint64(0)
		for k, e := range rc.entries {
			if k != key && (!found || e.lastUsed < lru) {
				lruKey, lru, found = k, e.lastUsed, true
			}
		}
		delete(rc.entries, lruKey)
	}
	return wr, nil
}

// worker serves pool jobs. Each worker owns a private replica cache keyed by
// model epoch: resolving a request whose epoch is not yet cached (a publish,
// rotation, or reload happened) lazily re-clones the bodies. The swap
// therefore costs each worker one clone per epoch change, spread across the
// pool as requests arrive — never a lock shared between workers.
func (s *Server) worker(stop <-chan struct{}) {
	replicas := newReplicaCache(s.opts.precision)
	for {
		select {
		case j := <-s.jobs:
			j.reply <- s.serve(j, replicas)
		case b := <-s.batches: // nil channel (never ready) without a dispatcher
			s.serveBatch(b, replicas)
			s.dispatcher.putBatch(b)
		case <-stop:
			return
		}
	}
}

// serve resolves one request against the provider and runs it over the
// caller's replica cache, feeding the optional telemetry and audit hooks.
// Both hooks cost one nil check when disabled — the serving benchmarks hold
// this path to within measurement noise of the uninstrumented server.
func (s *Server) serve(j *job, replicas *replicaCache) *Response {
	tr := s.opts.tracer
	var start time.Time
	if s.opts.metrics != nil || tr != nil {
		start = time.Now()
	}
	if tr != nil && !j.queuedAt.IsZero() {
		// Intake wait for jobs that reached a worker directly; dispatcher
		// jobs had their queue/batch-window split recorded at pop time.
		tr.Span(&j.tr, trace.StageQueue, j.queuedAt, start.Sub(j.queuedAt))
		j.queuedAt = time.Time{}
	}
	resp := s.serveResolved(j, replicas)
	if s.opts.metrics != nil || tr != nil {
		d := time.Since(start)
		if s.opts.metrics != nil {
			s.opts.metrics.record(j, resp, d)
		}
		tr.Span(&j.tr, trace.StageForward, start, d)
	}
	return resp
}

func (s *Server) serveResolved(j *job, replicas *replicaCache) *Response {
	// The budget verdict comes first: a refused request must not resolve,
	// be observed, or compute — it serves (and therefore leaks) nothing,
	// which is also why the refused charge was rolled back.
	if !s.chargeJob(j) {
		return &j.resp
	}
	m, err := s.provider.Resolve(j.req.Model, j.req.Version)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	if s.opts.observer != nil {
		observeJob(s.opts.observer, m.Name(), m.Version(), j)
	}
	wr, err := replicas.replicaFor(m)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	resp := s.processWith(j, wr)
	resp.Model, resp.Version = m.Name(), m.Version()
	if j.noiseSigma > 0 && resp.Err == "" {
		noiseResponse(j, resp)
	}
	return resp
}

// cloneReplica builds a worker's private replica, converting a panicking
// factory (the historical contract of WithReplicas) into an error response
// so a bad publish degrades to failed requests instead of a dead server.
func cloneReplica(m ServedModel) (bodies []*nn.Network, err error) {
	defer func() {
		if r := recover(); r != nil {
			bodies, err = nil, fmt.Errorf("comm: building model replica: %v", r)
		}
	}()
	bodies = m.NewReplica()
	if len(bodies) == 0 {
		return nil, fmt.Errorf("comm: model %q v%d has no bodies", m.Name(), m.Version())
	}
	return bodies, nil
}

// process runs a request synchronously outside the worker pool — the entry
// point used by tests and by callers that manage their own concurrency. It
// keeps its own replica cache (shared by all process callers, guarded by a
// mutex), so it must not be mixed with concurrent Serve traffic on a
// single-model server without replicas. Each call uses a fresh job, so the
// returned response (unlike a pooled worker's) stays valid indefinitely.
func (s *Server) process(req *Request) *Response {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	j := newJob()
	j.req = *req
	return s.serve(j, s.syncReplicas)
}

// processWith validates a request and runs it over one worker replica. A
// panic anywhere in the pass (validation can't anticipate every shape the
// hosted bodies reject) becomes an error response instead of killing the
// server.
func (s *Server) processWith(j *job, wr *workerReplica) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = &Response{Err: fmt.Sprintf("comm: request failed: %v", r)}
		}
	}()
	if s.opts.precision == PrecisionF32 {
		return s.processUnguarded32(j, wr)
	}
	return s.processUnguarded(j, wr)
}

func (s *Server) processUnguarded(j *job, wr *workerReplica) *Response {
	req := &j.req
	switch {
	case req.Inputs != nil:
		if len(req.Inputs) == 0 {
			return &Response{Err: "comm: batched request carries no inputs"}
		}
		if len(req.Inputs) > s.opts.maxBatch {
			return &Response{Err: fmt.Sprintf("comm: batch of %d exceeds server cap %d", len(req.Inputs), s.opts.maxBatch)}
		}
		stacked, err := j.stackInputs()
		if err != nil {
			return &Response{Err: err.Error()}
		}
		perBody := s.forwardBodies(&j.outs, wr, stacked)
		// Transpose [body][input] into the wire layout [input][body],
		// copying each part out of its body's scratch into the job arena.
		nb := len(wr.bodies)
		if cap(j.outputs) < len(j.rows) {
			j.outputs = make([][]*tensor.Tensor, len(j.rows))
		}
		j.outputs = j.outputs[:len(j.rows)]
		for i := range j.outputs {
			if cap(j.outputs[i]) < nb {
				j.outputs[i] = make([]*tensor.Tensor, nb)
			}
			j.outputs[i] = j.outputs[i][:nb]
		}
		for b, out := range perBody {
			per := out.Size() / out.Shape[0]
			off := 0
			for i, r := range j.rows {
				shape := append(j.shape[:0], r)
				shape = append(shape, out.Shape[1:]...)
				part := j.arena.NewTensor(shape...)
				copy(part.Data, out.Data[off:off+r*per])
				j.outputs[i][b] = part
				off += r * per
			}
		}
		j.resp = Response{Outputs: j.outputs}
		return &j.resp
	default:
		if err := validateFeatures(req.Features); err != nil {
			return &Response{Err: err.Error()}
		}
		perBody := s.forwardBodies(&j.outs, wr, req.Features)
		feats := j.feats[:0]
		for _, out := range perBody {
			feats = append(feats, j.arena.Clone(out))
		}
		j.feats = feats
		j.resp = Response{Features: feats}
		return &j.resp
	}
}

// stackInputs concatenates the request's inputs along the batch axis into
// the job arena, recording per-input row counts in j.rows — the
// allocation-free form of the package-level stackInputs.
func (j *job) stackInputs() (*tensor.Tensor, error) {
	inputs := j.req.Inputs
	rows := j.rows[:0]
	total := 0
	for i, in := range inputs {
		if err := validateFeatures(in); err != nil {
			return nil, err
		}
		if i > 0 {
			a, b := inputs[0].Shape, in.Shape
			if a[1] != b[1] || a[2] != b[2] || a[3] != b[3] {
				return nil, fmt.Errorf("comm: batched inputs disagree on feature shape: %v vs %v", a[1:], b[1:])
			}
		}
		rows = append(rows, in.Shape[0])
		total += in.Shape[0]
	}
	j.rows = rows
	s := inputs[0].Shape
	out := j.arena.NewTensor(total, s[1], s[2], s[3])
	off := 0
	for _, in := range inputs {
		off += copy(out.Data[off:], in.Data)
	}
	return out, nil
}

// forwardBodies runs every body of the replica over x in inference mode,
// each over its private scratch, returning outputs in body order. Each
// scratch is Reset at the START of its body's pass, never after: the
// results stay valid until the same replica's next request, and a pass
// that panics mid-network (hostile shapes that clear validateFeatures but
// break deeper in) cannot leave un-reset arenas accumulating demand across
// malformed requests — the next request's reset reclaims them.
//
// With a multi-worker pool the bodies run serially — the pool is the one
// level of parallelism, and N workers × serial bodies keeps every core on
// dedicated cache-resident work instead of oversubscribing N×bodies
// goroutines. A single-worker server keeps the historical per-body fan-out
// (it is the only parallelism available), with a panic in any body's
// goroutine re-raised on the calling goroutine for processWith to absorb.
//
// slot supplies (and receives back) the reusable output slice — a job's
// j.outs or a dispatchBatch's b.outs — keeping both callers on the
// zero-allocation steady state.
func (s *Server) forwardBodies(slot *[]*tensor.Tensor, wr *workerReplica, x *tensor.Tensor) []*tensor.Tensor {
	// The serial path must not share a local with the goroutine-spawning
	// branch: a closure-captured slice header is heap-moved on every call,
	// which is exactly the allocation this loop exists to avoid.
	if s.opts.workers > 1 || len(wr.bodies) == 1 {
		outs := (*slot)[:0]
		for i, b := range wr.bodies {
			sc := wr.scratches[i]
			sc.Reset()
			outs = append(outs, b.ForwardInfer(x, sc))
		}
		*slot = outs
		return outs
	}
	return forwardBodiesParallel(slot, wr, x)
}

// forwardBodiesParallel is the single-worker server's per-body fan-out. A
// panic in any body's goroutine is re-raised on the calling goroutine for
// processWith to absorb.
func forwardBodiesParallel(slot *[]*tensor.Tensor, wr *workerReplica, x *tensor.Tensor) []*tensor.Tensor {
	outs := (*slot)[:0]
	for range wr.bodies {
		outs = append(outs, nil)
	}
	*slot = outs
	panics := make(chan any, len(wr.bodies))
	var wg sync.WaitGroup
	for i, b := range wr.bodies {
		wg.Add(1)
		go func(i int, b *nn.Network) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			sc := wr.scratches[i]
			sc.Reset()
			outs[i] = b.ForwardInfer(x, sc)
		}(i, b)
	}
	wg.Wait()
	select {
	case r := <-panics:
		panic(r)
	default:
	}
	return outs
}
