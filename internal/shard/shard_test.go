package shard

import "testing"

func TestPlanPartitionsEvenly(t *testing.T) {
	cases := []struct {
		n, k int
		want []Range
	}{
		{4, 1, []Range{{0, 4}}},
		{4, 2, []Range{{0, 2}, {2, 4}}},
		{4, 3, []Range{{0, 2}, {2, 3}, {3, 4}}},
		{4, 4, []Range{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		{10, 3, []Range{{0, 4}, {4, 7}, {7, 10}}},
	}
	for _, c := range cases {
		got, err := Plan(c.n, c.k)
		if err != nil {
			t.Fatalf("Plan(%d,%d): %v", c.n, c.k, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("Plan(%d,%d) = %v", c.n, c.k, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Plan(%d,%d)[%d] = %v, want %v", c.n, c.k, i, got[i], c.want[i])
			}
		}
	}
}

func TestPlanCoversAndBalances(t *testing.T) {
	for n := 1; n <= 12; n++ {
		for k := 1; k <= n; k++ {
			plan, err := Plan(n, k)
			if err != nil {
				t.Fatalf("Plan(%d,%d): %v", n, k, err)
			}
			lo, minLen, maxLen := 0, n, 0
			for _, r := range plan {
				if r.Lo != lo {
					t.Fatalf("Plan(%d,%d) has gap before %v", n, k, r)
				}
				lo = r.Hi
				if r.Len() < minLen {
					minLen = r.Len()
				}
				if r.Len() > maxLen {
					maxLen = r.Len()
				}
			}
			if lo != n {
				t.Fatalf("Plan(%d,%d) covers [0,%d)", n, k, lo)
			}
			if maxLen-minLen > 1 {
				t.Errorf("Plan(%d,%d) unbalanced: sizes span %d..%d", n, k, minLen, maxLen)
			}
		}
	}
}

func TestPlanRejectsBadShapes(t *testing.T) {
	for _, c := range []struct{ n, k int }{{0, 1}, {4, 0}, {4, 5}, {-1, 1}, {3, -2}} {
		if _, err := Plan(c.n, c.k); err == nil {
			t.Errorf("Plan(%d,%d) should fail", c.n, c.k)
		}
	}
}

func TestParseSpec(t *testing.T) {
	k, total, err := ParseSpec("2/3")
	if err != nil || k != 2 || total != 3 {
		t.Fatalf("ParseSpec(2/3) = %d,%d,%v", k, total, err)
	}
	for _, bad := range []string{"", "3", "0/3", "4/3", "-1/3", "a/3", "1/b", "1/0", "1/2/3"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{2, 5}
	for i, want := range map[int]bool{1: false, 2: true, 4: true, 5: false} {
		if r.Contains(i) != want {
			t.Errorf("Range%v.Contains(%d) = %v", r, i, !want)
		}
	}
	if r.String() != "2..4" {
		t.Errorf("Range%v.String() = %q", r, r.String())
	}
	if r.Len() != 3 {
		t.Errorf("Range%v.Len() = %d", r, r.Len())
	}
}

func TestSelectionNeeds(t *testing.T) {
	r := Range{2, 4}
	if !selectionNeeds(nil, r) {
		t.Error("nil selection must need every range")
	}
	if selectionNeeds([]int{0, 1, 4}, r) {
		t.Error("selection outside [2,4) should not need it")
	}
	if !selectionNeeds([]int{1, 3}, r) {
		t.Error("selection touching [2,4) must need it")
	}
}
