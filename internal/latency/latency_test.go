package latency

import (
	"math"
	"testing"
)

// TestTableIIICalibration pins the cost model to the paper's measured
// operating point: Standard CI 0.66/0.98/2.30/3.94 s, Ensembler total 4.13 s
// (+4.8%), STAMP 309.7 s. The model is analytic, so a loose 10% band
// suffices to catch regressions without over-fitting the constants.
func TestTableIIICalibration(t *testing.T) {
	rows := TableIII(10)
	type want struct{ client, server, comm, total float64 }
	wants := []want{
		{0.66, 0.98, 2.30, 3.94},
		{0.66, 1.02, 2.45, 4.13},
		{0, 0, 0, 309.7}, // STAMP: only the total is quoted by the paper
	}
	const tol = 0.10
	check := func(name string, got, paper float64) {
		t.Helper()
		if paper == 0 {
			return
		}
		if math.Abs(got-paper)/paper > tol {
			t.Errorf("%s: got %.2f, paper %.2f (>±10%%)", name, got, paper)
		}
	}
	for i, r := range rows {
		check(r.Name+"/client", r.Client, wants[i].client)
		check(r.Name+"/server", r.Server, wants[i].server)
		check(r.Name+"/comm", r.Communication, wants[i].comm)
		check(r.Name+"/total", r.Total(), wants[i].total)
	}
}

func TestOverheadNearPaper(t *testing.T) {
	got := OverheadPercent(10)
	if got < 2 || got > 8 {
		t.Errorf("Ensembler overhead %.1f%%, paper reports 4.8%%", got)
	}
}

func TestClientTimeIndependentOfN(t *testing.T) {
	std := Run(StandardCI())
	ens := Run(Ensembler(10))
	if math.Abs(std.Client-ens.Client) > 1e-9 {
		t.Error("client time must not depend on N (§III-D)")
	}
}

func TestServerScalesWithWaves(t *testing.T) {
	// With parallelism 1, ten bodies cost ~10× the single-body server time.
	sc := Ensembler(10)
	sc.Server.Parallelism = 1
	serial := Run(sc)
	std := Run(StandardCI())
	ratio := serial.Server / std.Server
	if ratio < 9 || ratio > 11.5 {
		t.Errorf("serialized ensemble server ratio %.2f, want ~10", ratio)
	}
}

func TestParallelismSweepMonotone(t *testing.T) {
	rows := ParallelismSweep(10, []int{1, 2, 5, 10})
	for i := 1; i < len(rows); i++ {
		if rows[i].Total() > rows[i-1].Total()+1e-9 {
			t.Errorf("latency must not increase with parallelism: %v", rows)
		}
	}
	// Full parallelism should be far below serial.
	if rows[len(rows)-1].Total() > 0.7*rows[0].Total() {
		t.Error("parallel execution should substantially beat serial (§III-D)")
	}
}

func TestSTAMPOrdersOfMagnitudeSlower(t *testing.T) {
	rows := TableIII(10)
	if rows[2].Total() < 50*rows[0].Total() {
		t.Error("encrypted inference must be orders of magnitude slower")
	}
}

func TestCommunicationGrowsWithN(t *testing.T) {
	a := Run(Ensembler(2))
	b := Run(Ensembler(10))
	if b.Communication <= a.Communication {
		t.Error("returning more feature vectors must cost more communication")
	}
}

func TestLinkTransferAccounting(t *testing.T) {
	l := Link{UpBps: 1e6, DownBps: 2e6, RTTSeconds: 0.01}
	if got := l.Upload(1e6); math.Abs(got-1.005) > 1e-9 {
		t.Errorf("upload = %v", got)
	}
	if got := l.Download(1e6); math.Abs(got-0.505) > 1e-9 {
		t.Errorf("download = %v", got)
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Name: "x", Client: 1, Server: 2, Communication: 3}
	if b.Total() != 6 {
		t.Errorf("total = %v", b.Total())
	}
	if s := b.String(); s == "" {
		t.Error("empty string rendering")
	}
}
