// Command ensembler-serve hosts the server bodies of trained pipelines over
// TCP — the cloud half of the collaborative-inference deployment. The secret
// selector and the client tail stay with whoever holds the model artifacts;
// the server only ever sees intermediate features and returns all N feature
// vectors.
//
// Models come from either a single file (-model, the legacy path) or a
// versioned registry directory (-model-dir) written by ensembler-train or
// registry.Store.Publish. With a registry directory the server is
// hot-swappable with zero downtime: requests carry an optional
// (model, version) header resolved per request, SIGHUP re-scans the
// directory and swaps newly published versions in while in-flight requests
// finish on their old epoch, and -rotate-every re-draws the secret selector
// on a cadence (the switching-ensembles defense; the served bodies are
// unchanged, so rotation is invisible on the wire).
//
// Requests from concurrent connections are served by a bounded worker pool;
// each worker owns private replicas of the bodies it has served, lazily
// re-cloned when a swap publishes a new epoch, and within one request the N
// body passes run in parallel. SIGINT/SIGTERM triggers a graceful shutdown:
// in-flight requests finish, their responses flush, and Serve returns.
//
//	ensembler-serve -model ensembler.gob -addr :7946 -workers 4 -max-batch 64
//	ensembler-serve -model-dir models/ -model-name cifar -rotate-every 10m
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/ensemble"
	"ensembler/internal/registry"
)

func main() {
	modelPath := flag.String("model", "", "trained pipeline file from ensembler-train (single-model mode)")
	modelDir := flag.String("model-dir", "", "versioned model registry directory (multi-model, hot-swappable)")
	modelName := flag.String("model-name", "", "default model name (registry mode; defaults to the first model found)")
	addr := flag.String("addr", "127.0.0.1:7946", "listen address (use :0 to pick a free port)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "compute worker pool size (each worker holds body replicas)")
	maxBatch := flag.Int("max-batch", comm.DefaultMaxBatch, "max inputs per batched request")
	rotateEvery := flag.Duration("rotate-every", 0, "selector rotation cadence (registry mode; 0 disables)")
	rotateSeed := flag.Int64("rotate-seed", 1, "seed stream for selector rotations")
	keepVersions := flag.Int("keep-versions", 64, "on-disk versions kept per model when rotating (0 keeps everything)")
	flag.Parse()
	if *maxBatch <= 0 {
		*maxBatch = comm.DefaultMaxBatch // mirror the server's clamping in the banner
	}

	reg, err := openRegistry(*modelPath, *modelDir, *modelName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ensembler-serve: %v\n", err)
		os.Exit(1)
	}
	defaultModel := reg.Default()
	cur, err := reg.Current(defaultModel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ensembler-serve: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ensembler-serve: listening on %s: %v\n", *addr, err)
		os.Exit(1)
	}
	srv := comm.NewModelServer(reg,
		comm.WithWorkers(*workers),
		comm.WithMaxBatch(*maxBatch),
	)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The bound address line comes first and stands alone so scripts (and
	// tests using -addr :0) can scrape the actual port.
	fmt.Printf("listening on %s\n", ln.Addr())
	fmt.Printf("serving %s v%d (%d bodies) as default — %d models total, %d workers, max batch %d; selector stays client-side\n",
		defaultModel, cur.Version(), cur.Pipeline().Cfg.N, len(reg.Models()), srv.Workers(), *maxBatch)

	// SIGHUP: re-scan the registry directory and hot-swap anything newer.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if *modelDir == "" {
				fmt.Println("reload: ignored (no -model-dir)")
				continue
			}
			updated, err := reg.LoadStore()
			if err != nil {
				fmt.Fprintf(os.Stderr, "reload: %v\n", err)
				continue
			}
			fmt.Printf("reload: %d model(s) swapped in\n", updated)
		}
	}()

	// Selector rotation cadence: each tick re-draws the default model's
	// secret subset and publishes it as a new version (persisted when a
	// registry directory is attached). The swap is a pointer flip; workers
	// lazily re-clone between requests, so traffic never stalls.
	if *rotateEvery > 0 {
		go func() {
			ticker := time.NewTicker(*rotateEvery)
			defer ticker.Stop()
			seed := *rotateSeed
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					seed++
					start := time.Now()
					ep, err := reg.RotateSelector(defaultModel, ensemble.RotateOptions{Seed: seed})
					if err != nil {
						fmt.Fprintf(os.Stderr, "rotate: %v\n", err)
						continue
					}
					fmt.Printf("rotate: %s now v%d (selection re-drawn in %v; bodies unchanged)\n",
						ep.Name(), ep.Version(), time.Since(start).Round(time.Millisecond))
					// A rotation cadence writes a full pipeline per tick:
					// prune the store so disk (and the checksum-verifying
					// Open on restart) stays bounded.
					if store := reg.Store(); store != nil && *keepVersions > 0 {
						if pruned, err := store.Prune(ep.Name(), *keepVersions); err != nil {
							fmt.Fprintf(os.Stderr, "prune: %v\n", err)
						} else if pruned > 0 {
							fmt.Printf("prune: removed %d old version(s) of %s\n", pruned, ep.Name())
						}
					}
				}
			}
		}()
	}

	if err := srv.Serve(ctx, ln); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("shutdown complete")
}

// openRegistry builds the registry the server reads through, from either a
// single model file or a registry directory, failing with a descriptive
// error (never a panic) when the artifact is missing or corrupt.
func openRegistry(modelPath, modelDir, modelName string) (*registry.Registry, error) {
	switch {
	case modelDir != "" && modelPath != "":
		return nil, fmt.Errorf("-model and -model-dir are mutually exclusive")
	case modelDir != "":
		if _, err := os.Stat(modelDir); err != nil {
			return nil, fmt.Errorf("model directory %s is missing (train with ensembler-train -model-dir %s first): %w", modelDir, modelDir, err)
		}
		reg, err := registry.OpenDir(modelDir)
		if err != nil {
			return nil, err
		}
		if len(reg.Models()) == 0 {
			return nil, fmt.Errorf("model directory %s holds no published models", modelDir)
		}
		if modelName != "" {
			if err := reg.SetDefault(modelName); err != nil {
				return nil, err
			}
		}
		return reg, nil
	default:
		if modelPath == "" {
			modelPath = "ensembler.gob"
		}
		if _, err := os.Stat(modelPath); err != nil {
			return nil, fmt.Errorf("model file %s is missing (train with ensembler-train -out %s first): %w", modelPath, modelPath, err)
		}
		e, err := ensemble.LoadFile(modelPath)
		if err != nil {
			return nil, fmt.Errorf("loading model %s: %w", modelPath, err)
		}
		name := modelName
		if name == "" {
			name = "default"
		}
		reg := registry.New(nil)
		if _, err := reg.Publish(name, e); err != nil {
			return nil, err
		}
		return reg, nil
	}
}
