package experiments

import (
	"bytes"
	"strings"
	"testing"

	"ensembler/internal/data"
)

func TestScalesAreValid(t *testing.T) {
	for _, sc := range []Scale{Small(), Paper()} {
		if sc.P > sc.N || sc.P < 1 {
			t.Errorf("invalid N/P: %+v", sc)
		}
		if sc.Train == 0 || sc.Aux == 0 || sc.Test == 0 {
			t.Errorf("zero dataset sizes: %+v", sc)
		}
		if sc.Sigma <= 0 || sc.Lambda <= 0 {
			t.Errorf("defense knobs unset: %+v", sc)
		}
	}
	if Paper().N != 10 {
		t.Error("paper scale must use N=10")
	}
}

func TestRenderRows(t *testing.T) {
	var buf bytes.Buffer
	RenderRows(&buf, "Table X", []Row{{Name: "None", DeltaAcc: 0.01, SSIM: 0.5, PSNR: 9.9}})
	out := buf.String()
	for _, want := range []string{"Table X", "None", "0.500", "9.90", "1.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIIRows(t *testing.T) {
	rows := TableIII(10)
	if len(rows) != 3 {
		t.Fatalf("Table III must have 3 rows, got %d", len(rows))
	}
	if rows[0].Name != "Standard CI" || rows[1].Name != "Ensembler" || rows[2].Name != "STAMP" {
		t.Errorf("row names: %v %v %v", rows[0].Name, rows[1].Name, rows[2].Name)
	}
	var buf bytes.Buffer
	RenderTableIII(&buf, rows)
	if !strings.Contains(buf.String(), "Standard CI") {
		t.Error("render missing rows")
	}
}

func TestComputeClaims(t *testing.T) {
	rows := []Row{
		{Name: "Single", SSIM: 0.4, PSNR: 10},
		{Name: "Ours - Adaptive", SSIM: 0.1, PSNR: 6},
		{Name: "Ours - SSIM", SSIM: 0.2, PSNR: 8},
	}
	rep := ComputeClaims(rows, 10)
	if rep.SSIMDropVsSingle < 74 || rep.SSIMDropVsSingle > 76 {
		t.Errorf("SSIM drop = %.1f, want 75", rep.SSIMDropVsSingle)
	}
	if rep.PSNRDropVsSingle < 39 || rep.PSNRDropVsSingle > 41 {
		t.Errorf("PSNR drop = %.1f, want 40", rep.PSNRDropVsSingle)
	}
	if rep.LatencyOverhead <= 0 {
		t.Error("latency overhead must be positive")
	}
}

func TestComputeClaimsHandlesMissingRows(t *testing.T) {
	rep := ComputeClaims([]Row{{Name: "None"}}, 5)
	if rep.SSIMDropVsSingle != 0 || rep.PSNRDropVsSingle != 0 {
		t.Error("missing rows must yield zero claims, not panic")
	}
}

// microScale is the smallest configuration that still exercises every code
// path of the table machinery.
func microScale() Scale {
	return Scale{
		N: 2, P: 2, Sigma: 0.05, Lambda: 0.5,
		Stage1Epochs: 2, Stage3Epochs: 2,
		ShadowEpochs: 2, DecoderEpochs: 2, Restarts: 1,
		Train: 96, Aux: 48, Test: 32, EvalSamples: 8, BatchSize: 16,
	}
}

func TestDatasetRowsIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration smoke test")
	}
	rows := datasetRows(microScale(), data.CIFAR10Like, 2, 99, false, nil)
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
		if r.SSIM < -1 || r.SSIM > 1 {
			t.Errorf("%s SSIM out of range: %v", r.Name, r.SSIM)
		}
	}
	for _, want := range []string{"Single", "Ours - Adaptive", "Ours - SSIM", "Ours - PSNR"} {
		if !names[want] {
			t.Errorf("missing row %q", want)
		}
	}
}

func TestTableIIIncludesAllBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("integration smoke test")
	}
	rows := TableII(microScale(), 123, nil)
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
	}
	for _, want := range []string{"None", "Shredder", "Single", "DR-single", "DR-2 - SSIM", "DR-2 - PSNR", "Ours - Adaptive"} {
		if !names[want] {
			t.Errorf("Table II missing row %q (have %v)", want, names)
		}
	}
}
