package latency

import "fmt"

// This file models the serving regimes of the comm subsystem: many client
// connections, a bounded pool of server-side workers (each holding a private
// replica of the N bodies), and batched requests that amortize protocol
// overhead. It is the analytic counterpart of the throughput benchmark in
// bench_test.go, built as a closed queueing system: each of C clients keeps
// exactly one request in flight, the server completes at most one request
// per worker every S seconds, and the round-trip time seen by an unloaded
// client is client compute + transfer + server compute.

// ServingScenario describes one operating point of the concurrent server.
type ServingScenario struct {
	Base    Scenario // device/link/model parameters; Base.Batch is ignored
	Workers int      // server worker replicas computing in parallel
	Clients int      // concurrent client connections, one request in flight each
	Batch   int      // images per request (InferBatch size × client batch)
}

// ServingEstimate is the model's prediction for one serving scenario.
type ServingEstimate struct {
	Name string
	// RequestSeconds is the unloaded round-trip latency of one request.
	RequestSeconds float64
	// ThroughputRPS is the sustained request rate with all clients active.
	ThroughputRPS float64
	// ThroughputIPS is the sustained image rate (requests × batch).
	ThroughputIPS float64
	// Utilization is the fraction of worker capacity kept busy.
	Utilization float64
}

// String formats one row of the serving table.
func (e ServingEstimate) String() string {
	return fmt.Sprintf("%-18s rtt %.3fs  %.2f req/s  %.1f img/s  util %.0f%%",
		e.Name, e.RequestSeconds, e.ThroughputRPS, e.ThroughputIPS, 100*e.Utilization)
}

// EstimateServing evaluates the closed-system model: throughput is bounded
// both by the clients' request-issue rate (Clients / round-trip) and by the
// server pool's service rate (Workers / server-time-per-request).
func EstimateServing(sc ServingScenario) ServingEstimate {
	base := sc.Base
	if sc.Batch <= 0 {
		sc.Batch = 1
	}
	if sc.Workers <= 0 {
		sc.Workers = 1
	}
	if sc.Clients <= 0 {
		sc.Clients = 1
	}
	base.Batch = sc.Batch
	b := Run(base)
	request := b.Total()
	service := b.Server
	clientBound := float64(sc.Clients) / request
	serverBound := float64(sc.Workers) / service
	x := clientBound
	if serverBound < x {
		x = serverBound
	}
	return ServingEstimate{
		Name:           fmt.Sprintf("c=%d w=%d b=%d", sc.Clients, sc.Workers, sc.Batch),
		RequestSeconds: request,
		ThroughputRPS:  x,
		ThroughputIPS:  x * float64(sc.Batch),
		Utilization:    x * service / float64(sc.Workers),
	}
}

// ConcurrencySweep evaluates the scenario across client counts — the model
// behind the ">2× throughput under concurrency" serving claim: a single
// connection is round-trip-bound, so adding clients raises throughput until
// the worker pool saturates.
func ConcurrencySweep(base Scenario, workers, batch int, clients []int) []ServingEstimate {
	out := make([]ServingEstimate, len(clients))
	for i, c := range clients {
		out[i] = EstimateServing(ServingScenario{Base: base, Workers: workers, Clients: c, Batch: batch})
	}
	return out
}

// BatchingSweep evaluates the scenario across request batch sizes: batching
// amortizes the per-round-trip RTT over more images, raising image
// throughput even at fixed concurrency.
func BatchingSweep(base Scenario, workers, clients int, batches []int) []ServingEstimate {
	out := make([]ServingEstimate, len(batches))
	for i, b := range batches {
		out[i] = EstimateServing(ServingScenario{Base: base, Workers: workers, Clients: clients, Batch: b})
	}
	return out
}

// ConcurrencySpeedup returns the predicted throughput ratio between clients
// concurrent connections and a single connection at the same batch size.
func ConcurrencySpeedup(base Scenario, workers, batch, clients int) float64 {
	one := EstimateServing(ServingScenario{Base: base, Workers: workers, Clients: 1, Batch: batch})
	many := EstimateServing(ServingScenario{Base: base, Workers: workers, Clients: clients, Batch: batch})
	return many.ThroughputRPS / one.ThroughputRPS
}
