// Remote inference: the deployed form of the system. A TCP server hosts the
// N ensemble bodies (the cloud) behind a replicated worker pool, reading
// them through a model registry; the client keeps its head, fixed noise,
// secret selector, and tail, and performs classification over the wire. The
// example verifies the remote result matches local inference bit-for-bit,
// drives the concurrent serving path (a connection pool issuing simultaneous
// single and batched requests), and then hot-swaps the pipeline mid-traffic:
// the registry rotates the secret selector and publishes the result as a new
// version while pooled clients keep hammering the server — zero failed
// requests, and the pool re-wires to the rotated client runtime without a
// restart.
//
// The final act shards the same ensemble across a K=3 fleet: each shard
// process hosts a disjoint body subset behind the unchanged wire protocol,
// the scatter-gather client reassembles body order and selects locally, and
// one shard is killed mid-traffic — with zero failed requests, because the
// secret selection never touches the dead shard's bodies and no server can
// know that.
//
//	go run ./examples/remote_inference
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ensembler/internal/attack"
	"ensembler/internal/audit"
	"ensembler/internal/comm"
	"ensembler/internal/data"
	"ensembler/internal/ensemble"
	"ensembler/internal/nn"
	"ensembler/internal/registry"
	"ensembler/internal/shard"
	"ensembler/internal/split"
	"ensembler/internal/telemetry"
	"ensembler/internal/tensor"
)

// printMetrics renders the telemetry registry and prints the sample lines
// whose names start with any of the prefixes — a gofmt'd stand-in for
// `curl /metrics | grep`.
func printMetrics(treg *telemetry.Registry, prefixes ...string) {
	var b strings.Builder
	if err := treg.WriteProm(&b); err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		for _, p := range prefixes {
			if strings.HasPrefix(line, p) {
				fmt.Println("  " + line)
				break
			}
		}
	}
}

func main() {
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, Train: 256, Aux: 16, Test: 64, Seed: 3})
	cfg := ensemble.Config{
		Arch: split.DefaultArch(data.CIFAR10Like), N: 4, P: 2, Sigma: 0.05, Lambda: 0.5, Seed: 4,
		Stage1:      split.TrainOptions{Epochs: 4, BatchSize: 32, LR: 0.05},
		Stage3:      split.TrainOptions{Epochs: 6, BatchSize: 32, LR: 0.05},
		Stage1Noise: true,
	}
	fmt.Println("training a small Ensembler pipeline...")
	e := ensemble.Train(cfg, sp.Train, nil)

	// Cloud side: the trained pipeline is published into a registry, and the
	// server resolves (model, version) per request through it — that is what
	// makes the mid-traffic swap below possible. Each worker clones private
	// body replicas from the current epoch.
	reg := registry.New(nil)
	ep, err := reg.Publish("cifar", e)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	// The server is born instrumented: per-request telemetry plus the audit
	// engine's reservoir sampler mirroring every 2nd request's transmitted
	// features. Both hooks are nil checks on the hot path when absent.
	treg := telemetry.NewRegistry()
	sampler := audit.NewSampler(2, 64, 5)
	srv := comm.NewModelServer(reg, comm.WithWorkers(4),
		comm.WithMetrics(comm.NewServerMetrics(treg)), comm.WithObserver(sampler))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	fmt.Printf("server hosting %s v%d (%d bodies) at %s (%d workers)\n",
		ep.Name(), ep.Version(), cfg.N, ln.Addr(), srv.Workers())

	// Edge side: head, noise, secret selector, tail.
	client, err := comm.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.ComputeFeatures = e.ClientFeatures
	client.Select = e.Selector.Apply
	client.Tail = e.Tail

	idxs := make([]int, 32)
	for i := range idxs {
		idxs[i] = i
	}
	x, labels := sp.Test.Batch(idxs)
	logits, timing, err := client.Infer(ctx, x)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("remote batch of %d images: accuracy %.3f\n", len(idxs), nn.Accuracy(logits, labels))
	if logits.AllClose(e.Predict(x), 1e-9) {
		fmt.Println("remote result matches local pipeline exactly ✓")
	}
	if model, version := client.Served(); model == "cifar" {
		fmt.Printf("server reports serving %s v%d (the request carried no header — default-model fallback)\n", model, version)
	}
	fmt.Printf("timing: client %.1fms | network+server round trip %.1fms\n",
		timing.Client.Seconds()*1e3, timing.RoundTrip.Seconds()*1e3)
	fmt.Printf("wire:   %.1f KiB up (features), %.1f KiB down (%d bodies × features)\n",
		float64(timing.BytesUp)/1024, float64(timing.BytesDown)/1024, cfg.N)

	// One round trip can carry several inputs: the server stacks them, runs
	// each body once over the stack, and splits the results back.
	a, _ := sp.Test.Batch([]int{0, 1, 2, 3})
	b, _ := sp.Test.Batch([]int{4, 5, 6, 7})
	batched, bt, err := client.InferBatch(ctx, []*tensor.Tensor{a, b})
	if err != nil {
		log.Fatal(err)
	}
	if batched[0].AllClose(e.Predict(a), 1e-9) && batched[1].AllClose(e.Predict(b), 1e-9) {
		fmt.Printf("batched round trip (2 inputs, %.1fms) matches local inference ✓\n",
			bt.RoundTrip.Seconds()*1e3)
	}

	// Concurrent serving: a connection pool, each connection wired through
	// its own clone of the client-side networks.
	pool, err := comm.NewPool(ln.Addr().String(), 4, func(c *comm.Client) error {
		rt := e.NewClientRuntime()
		c.ComputeFeatures = rt.Features
		c.Select = rt.Select
		c.Tail = rt.Tail
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	const requests = 16
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := pool.Infer(ctx, x); err != nil {
				log.Printf("pooled request: %v", err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("pool: %d concurrent requests in %.1fms (%.1f req/s)\n",
		requests, elapsed.Seconds()*1e3, float64(requests)/elapsed.Seconds())

	// --- Mid-traffic hot swap ---
	//
	// A long-lived deployment should not serve forever under one secret
	// subset (the switching-ensembles rationale): rotate it while pooled
	// clients keep the server busy. Server bodies are unchanged by rotation,
	// so requests in flight during the swap still match the old pipeline
	// bit-for-bit; afterwards the pool re-wires to the rotated runtime.
	fmt.Printf("\nhot swap: rotating the secret selector under load (old selection %v)\n", e.Selector.Indices)
	var swapErrs atomic.Int64
	stopLoad := make(chan struct{})
	var load sync.WaitGroup
	for i := 0; i < 8; i++ {
		load.Add(1)
		go func() {
			defer load.Done()
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				if _, _, err := pool.Infer(ctx, x); err != nil {
					swapErrs.Add(1)
					log.Printf("in-flight request during swap: %v", err)
				}
			}
		}()
	}

	swapStart := time.Now()
	rotatedEp, err := reg.RotateSelector("cifar", ensemble.RotateOptions{
		Seed: 99,
		Tune: sp.Train,
		TuneOpts: split.TrainOptions{
			Epochs: 6, BatchSize: 32, LR: 0.05,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	rotated := rotatedEp.Pipeline()
	// Client-side half of the swap: the pool's connections re-wire to the
	// rotated head/noise/selector/tail as they are released; no caller ever
	// sees an error.
	pool.Reconfigure(func(c *comm.Client) error {
		rt := rotated.NewClientRuntime()
		c.ComputeFeatures = rt.Features
		c.Select = rt.Select
		c.Tail = rt.Tail
		return nil
	})
	close(stopLoad)
	load.Wait()
	fmt.Printf("published %s v%d in %v with traffic flowing; failed requests: %d\n",
		rotatedEp.Name(), rotatedEp.Version(), time.Since(swapStart).Round(time.Millisecond), swapErrs.Load())

	// The rotated pipeline serves through the same socket; results match its
	// local predictions bit-for-bit.
	post, _, err := pool.Infer(ctx, x)
	if err != nil {
		log.Fatal(err)
	}
	if post.AllClose(rotated.Predict(x), 1e-9) {
		fmt.Printf("post-swap result matches the rotated pipeline exactly ✓ (new selection %v, accuracy %.3f)\n",
			rotated.Selector.Indices, rotated.Accuracy(sp.Test))
	}

	// Multi-model routing on the same socket: publish a canary under its own
	// name and pin one request to it by header.
	if _, err := reg.Publish("cifar-canary", rotated); err != nil {
		log.Fatal(err)
	}
	canary, err := comm.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer canary.Close()
	rt := rotated.NewClientRuntime()
	canary.Model = "cifar-canary"
	canary.ComputeFeatures = rt.Features
	canary.Select = rt.Select
	canary.Tail = rt.Tail
	if _, _, err := canary.Infer(ctx, x); err != nil {
		log.Fatal(err)
	}
	if model, version := canary.Served(); model == "cifar-canary" {
		fmt.Printf("routed a pinned request to %s v%d on the same socket ✓\n", model, version)
	}

	// --- Online privacy audit: leakage-triggered rotation ---
	//
	// So far every rotation was commanded. The audit engine closes the loop:
	// the sampler has been mirroring live transmitted features all along;
	// now an auditor replays the repo's inversion attack against the live
	// epoch — oracle-grade, with the attacker's aux set drawn from the same
	// distribution as the victim data — scores reconstructions against the
	// calibration floor, and rotates the selector on evidence.
	fmt.Println("\nonline privacy audit: attack replay against the live epoch")
	auditAttack := attack.Config{DecoderEpochs: 4, BatchSize: 16, Seed: 123}

	// First, measure: a report-only auditor (threshold at the ceiling, no
	// Rotate hook) establishes what the oracle attack extracts right now.
	probe, err := audit.New(audit.Config{
		Registry: reg, Model: "cifar", Sampler: sampler, MinSamples: 4,
		Aux: sp.Aux, Eval: sp.Test, EvalSamples: 8,
		Oracle: true, Attack: auditAttack, Threshold: 0.99,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ { // traffic for the sampler to mirror
		if _, _, err := pool.Infer(ctx, x); err != nil {
			log.Fatal(err)
		}
	}
	measured := probe.RunOnce()
	if measured.LastErr != "" {
		log.Fatal(measured.LastErr)
	}
	fmt.Printf("measured leakage: oracle reconstruction SSIM %.3f (calibration floor %.3f)\n",
		measured.LastSSIM, measured.Floor)
	if measured.LastSSIM < measured.Floor {
		fmt.Println("the defense holds: even the oracle attacker reconstructs below the input-independent floor")
	}

	// Then, govern: an operator would set the threshold where leakage
	// becomes unacceptable; to watch the closed loop trip, set it just
	// below what we measured, with two consecutive breaches required.
	threshold := max(measured.LastSSIM-0.02, 0.01)
	live := rotated // the pipeline clients must run after each swap
	auditor, err := audit.New(audit.Config{
		Registry: reg, Model: "cifar", Sampler: sampler, MinSamples: 4,
		Aux: sp.Aux, Eval: sp.Test, EvalSamples: 8,
		Oracle: true, Attack: auditAttack,
		Threshold: threshold, Hysteresis: 0.05, Breaches: 2, Alpha: 1,
		MinRotateInterval: time.Millisecond,
		Rotate: func(cause string) error {
			ep, err := reg.RotateSelectorCause("cifar", cause, ensemble.RotateOptions{Seed: 777})
			if err != nil {
				return err
			}
			live = ep.Pipeline()
			// Client half of the fan-out, exactly as in the manual swap.
			pool.Reconfigure(func(c *comm.Client) error {
				rt := live.NewClientRuntime()
				c.ComputeFeatures = rt.Features
				c.Select = rt.Select
				c.Tail = rt.Tail
				return nil
			})
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	auditor.RegisterMetrics(treg)

	for audits := 0; audits < 2; audits++ {
		for i := 0; i < 8; i++ { // each audit consumes the reservoir; refill it
			if _, _, err := pool.Infer(ctx, x); err != nil {
				log.Fatal(err)
			}
		}
		st := auditor.RunOnce()
		fmt.Printf("audit %d: leakage %.3f vs threshold %.3f (breaches %d, armed %v)\n",
			audits+1, st.Leakage, threshold, st.Breaches, st.Armed)
	}
	final := auditor.State()
	if final.Rotations != 1 {
		log.Fatalf("expected exactly one leakage-triggered rotation, got %d", final.Rotations)
	}
	hist := reg.RotationHistory("cifar")
	last := hist[len(hist)-1]
	fmt.Printf("automatic rotation: v%d published, cause %q\n", last.Version, last.Cause)
	if post, _, err := pool.Infer(ctx, x); err != nil {
		log.Fatal(err)
	} else if post.AllClose(live.Predict(x), 1e-9) {
		fmt.Printf("post-audit traffic matches the rotated pipeline exactly ✓ (selection now %v)\n",
			live.Selector.Indices)
	}
	fmt.Println("the control plane's /metrics view of the same story:")
	printMetrics(treg,
		"ensembler_server_requests_total",
		"ensembler_audit_leakage",
		"ensembler_audit_rotations_total",
		"ensembler_audit_features_sampled_total")

	cancel()
	if err := <-served; err != nil {
		log.Fatal(err)
	}
	fmt.Println("graceful shutdown complete")

	// --- Sharded fleet ---
	//
	// The same ensemble, horizontally scaled: K=3 independent server
	// processes each host a disjoint subset of the N bodies, and the
	// scatter-gather client fans each request's features out to all of
	// them, reassembles body order, and applies the secret selector
	// locally. A compromised shard host now holds only its own bodies —
	// and because the selection is secret, losing a shard that hosts no
	// selected body costs nothing: we kill one mid-traffic and finish with
	// zero failed requests.
	const shards = 3
	fmt.Printf("\nsharded fleet: %d shards over N=%d bodies\n", shards, cfg.N)
	plan, err := shard.Plan(cfg.N, shards)
	if err != nil {
		log.Fatal(err)
	}
	fleetCtx, fleetCancel := context.WithCancel(context.Background())
	defer fleetCancel()
	addrs := make([]string, shards)
	cancels := make([]context.CancelFunc, shards)
	serves := make([]chan error, shards)
	for k, r := range plan {
		provider, err := comm.NewSubsetProvider(reg, r.Lo, r.Hi)
		if err != nil {
			log.Fatal(err)
		}
		sln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer sln.Close()
		sctx, scancel := context.WithCancel(fleetCtx)
		cancels[k] = scancel
		serves[k] = make(chan error, 1)
		ssrv := comm.NewModelServer(provider, comm.WithWorkers(2))
		go func(k int, sln net.Listener) { serves[k] <- ssrv.Serve(sctx, sln) }(k, sln)
		addrs[k] = sln.Addr().String()
		fmt.Printf("  shard %d/%d at %s hosting bodies %s\n", k+1, shards, addrs[k], r)
	}

	fleet, err := shard.NewClient(shard.Config{
		Addrs:      addrs,
		Ranges:     plan,
		N:          cfg.N,
		NewRuntime: shard.PipelineRuntime(live),
		PoolSize:   4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()
	fleet.RegisterMetrics(treg) // per-shard health lands in the same scrape

	fleetLogits, ft, err := fleet.Infer(context.Background(), x)
	if err != nil {
		log.Fatal(err)
	}
	if fleetLogits.AllClose(live.Predict(x), 1e-9) {
		fmt.Printf("scatter-gather inference matches local pipeline exactly ✓ (slowest shard %.1fms, %.1f KiB up across %d shards)\n",
			ft.RoundTrip.Seconds()*1e3, float64(ft.BytesUp)/1024, shards)
	}

	// Rotation fan-out in a fleet: the registry re-draws the secret, and the
	// only propagation needed is the scatter-gather client re-wiring — the
	// shard servers never learn anything happened (their bodies, and even
	// their responses, are byte-identical across the rotation).
	fleetEp, err := reg.RotateSelectorCause("cifar", "schedule", ensemble.RotateOptions{Seed: 888})
	if err != nil {
		log.Fatal(err)
	}
	live = fleetEp.Pipeline()
	fleet.RotateTo(live)
	fanned, _, err := fleet.Infer(context.Background(), x)
	if err != nil {
		log.Fatal(err)
	}
	if fanned.AllClose(live.Predict(x), 1e-9) {
		fmt.Printf("rotation fanned out to the fleet ✓ (selection now %v; cause %q in the registry trail)\n",
			live.Selector.Indices, "schedule")
	}

	// Kill a shard hosting no selected body while traffic flows. The
	// client knows its secret selection; the servers never do — so the
	// demo can pick the victim shard, but no observer of the fleet can.
	victim := -1
	for k, r := range plan {
		hostsSelected := false
		for _, i := range live.Selector.Indices {
			if r.Contains(i) {
				hostsSelected = true
				break
			}
		}
		if !hostsSelected {
			victim = k
			break
		}
	}
	fmt.Printf("killing shard %d/%d mid-traffic (selection %v never touches its bodies %s)\n",
		victim+1, shards, live.Selector.Indices, plan[victim])

	var fleetErrs atomic.Int64
	var fleetReqs atomic.Int64
	stopFleetLoad := make(chan struct{})
	var fleetLoad sync.WaitGroup
	for i := 0; i < 6; i++ {
		fleetLoad.Add(1)
		go func() {
			defer fleetLoad.Done()
			for {
				select {
				case <-stopFleetLoad:
					return
				default:
				}
				if _, _, err := fleet.Infer(context.Background(), x); err != nil {
					fleetErrs.Add(1)
					log.Printf("fleet request: %v", err)
				}
				fleetReqs.Add(1)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	cancels[victim]() // the shard process dies; in-flight requests drain
	time.Sleep(150 * time.Millisecond)
	close(stopFleetLoad)
	fleetLoad.Wait()
	<-serves[victim]

	fmt.Printf("served %d requests across the kill; failed requests: %d\n", fleetReqs.Load(), fleetErrs.Load())
	for _, h := range fleet.Health() {
		status := "up"
		if h.Down {
			status = "down"
		}
		fmt.Printf("  shard %s (bodies %s): %s — %d requests, %d failures\n",
			h.Addr, h.Bodies, status, h.Requests, h.Failures)
	}
	fmt.Println("the same health, as a scraper sees it:")
	printMetrics(treg, "ensembler_shard_up")
	degraded, _, err := fleet.Infer(context.Background(), x)
	if err != nil {
		log.Fatal(err)
	}
	if degraded.AllClose(live.Predict(x), 1e-9) {
		fmt.Println("degraded fleet still matches local inference exactly ✓")
	}

	fleetCancel()
	for k := range serves {
		if k != victim {
			<-serves[k]
		}
	}
	fmt.Printf("neither the old %v nor the new %v secret selection ever appeared on the wire — on any shard.\n",
		e.Selector.Indices, live.Selector.Indices)
}
