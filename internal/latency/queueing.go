package latency

import "fmt"

// This file models the continuous-batching dispatcher of the comm subsystem
// (internal/comm/dispatch.go) as an open queueing system. Requests from many
// connections arrive at an aggregate Poisson rate λ; the dispatcher holds the
// first job it sees for a batch window W while co-arrivals accumulate, then
// runs the coalesced batch through one stacked forward pass. The window buys
// batch occupancy at the price of added latency, and this model prices that
// trade: mean batch size B = 1 + λW, and the window-wait a job experiences is
// a mixture — the batch's first job waits the full W, the remaining B−1
// co-arrivals land uniformly inside the window. That gives the wait CDF
//
//	F(x) = (1 − 1/B) · x/W   for x < W,  F(W) = 1
//
// whose quantiles, plus the stacked service time B·S and a light M/D/1-style
// congestion term, yield the predicted p50/p99 that ensembler-bench gates
// against a measured loopback run.

// QueueingScenario describes one operating point of the batching dispatcher.
type QueueingScenario struct {
	Base    Scenario // device/link/model parameters; Base.Batch is ignored
	Workers int      // server worker replicas computing in parallel

	// EffectiveParallel caps how many workers actually compute concurrently
	// (the host's usable cores); 0 means Workers. Same clamp as
	// ServingScenario — predictions only match a measurement taken at the
	// same effective parallelism.
	EffectiveParallel int

	// WireFactor scales transferred bytes relative to the float32 payload,
	// as in ServingScenario. 0 means 1.
	WireFactor float64

	// ArrivalRPS is the aggregate request arrival rate across all client
	// connections, treated as Poisson.
	ArrivalRPS float64

	// WindowSeconds is the dispatcher's batch window (-batch-window): how
	// long the first job of a batch is held while co-arrivals from other
	// connections accumulate. 0 means greedy dispatch — coalescing still
	// happens when the queue is backed up, but nobody is held deliberately.
	WindowSeconds float64

	// MaxBatch caps the coalesced batch size (WithMaxCoalesce); 0 leaves
	// the mean batch unclamped.
	MaxBatch int

	// ServiceSeconds, when > 0, overrides the modeled per-request server
	// service time with a measured one — the calibration hook the bench
	// gate uses: measure an unbatched loopback run, feed its per-request
	// time here, and the prediction shares the measurement's hardware
	// reality instead of the Table III device model. 0 derives the service
	// time from Base via the serving model.
	ServiceSeconds float64
}

// QueueingEstimate is the model's prediction for one queueing scenario.
type QueueingEstimate struct {
	Name string
	// MeanBatch is the expected coalesced batch size, 1 + λW clamped.
	MeanBatch float64
	// Utilization is offered load over service capacity (ρ).
	Utilization float64
	// WaitP50Seconds / WaitP99Seconds are quantiles of the window wait
	// alone — how long a request sits in the intake queue.
	WaitP50Seconds float64
	WaitP99Seconds float64
	// P50Seconds / P99Seconds are end-to-end latency quantiles: window
	// wait + congestion + stacked batch service + wire/client overhead.
	P50Seconds float64
	P99Seconds float64
	// ThroughputRPS is the sustained request rate: the arrival rate, capped
	// by service capacity.
	ThroughputRPS float64
	// Saturated reports ρ ≥ 1: arrivals outrun the worker pool, the intake
	// queue grows until admission control sheds, and the latency quantiles
	// above describe only the admitted survivors.
	Saturated bool
}

// String formats one row of the queueing table.
func (e QueueingEstimate) String() string {
	row := fmt.Sprintf("%-22s B %.1f  util %3.0f%%  p50 %6.1fms  p99 %6.1fms  %.0f req/s",
		e.Name, e.MeanBatch, 100*e.Utilization, 1e3*e.P50Seconds, 1e3*e.P99Seconds, e.ThroughputRPS)
	if e.Saturated {
		row += "  SATURATED"
	}
	return row
}

// EstimateContinuousBatching evaluates the open queueing model at one
// operating point. Window 0 with a sub-capacity arrival rate reduces to the
// plain per-request round trip.
func EstimateContinuousBatching(sc QueueingScenario) QueueingEstimate {
	if sc.Workers <= 0 {
		sc.Workers = 1
	}
	srv := ServingScenario{Base: sc.Base, Workers: sc.Workers, Clients: 1, Batch: 1,
		EffectiveParallel: sc.EffectiveParallel, WireFactor: sc.WireFactor}
	var request, service float64
	if sc.ServiceSeconds > 0 {
		// Calibrated mode: the measured per-request time is the whole
		// round trip on loopback — wire and client compute are noise.
		request, service = sc.ServiceSeconds, sc.ServiceSeconds
	} else {
		request, service = servingTimes(&srv)
	}
	// Wire and client compute happen outside the stacked pass and are paid
	// once per request regardless of batch occupancy.
	overhead := request - service
	if overhead < 0 {
		overhead = 0
	}

	lam := sc.ArrivalRPS
	if lam < 0 {
		lam = 0
	}
	w := sc.WindowSeconds
	if w < 0 {
		w = 0
	}

	// Mean batch occupancy: the first job plus the λW Poisson co-arrivals
	// the window collects, clamped by the coalescing cap.
	b := 1 + lam*w
	if sc.MaxBatch > 0 && b > float64(sc.MaxBatch) {
		b = float64(sc.MaxBatch)
	}

	// Stacking B single-row requests costs B single-row passes on a serial
	// host — batching amortizes dispatch overhead, not compute — so each
	// request still consumes `service` seconds of pool time and capacity is
	// independent of the window.
	eff := float64(srv.effectiveWorkers())
	capacity := 0.0
	if service > 0 {
		capacity = eff / service
	}
	rho := 0.0
	if capacity > 0 {
		rho = lam / capacity
	}
	saturated := capacity > 0 && rho >= 1

	batchService := b * service

	// Light M/D/1-flavored congestion term for the queue behind the window:
	// mean residual work scales as ρ/(1−ρ) of a batch service. Clamped so a
	// saturated scenario reports a large-but-finite number with the
	// Saturated flag carrying the real verdict.
	rc := rho
	if rc > 0.95 {
		rc = 0.95
	}
	congestion := rc * batchService / (2 * (1 - rc))

	// Window-wait quantiles from the mixture CDF: mass 1/B at exactly W
	// (each batch's first job), the rest uniform over [0, W).
	waitQ := func(q float64) float64 {
		if w == 0 {
			return 0
		}
		edge := 1 - 1/b
		if q < edge {
			return q * w / edge
		}
		return w
	}
	wait50, wait99 := waitQ(0.50), waitQ(0.99)

	thr := lam
	if capacity > 0 && thr > capacity {
		thr = capacity
	}
	return QueueingEstimate{
		Name:           fmt.Sprintf("λ=%.0f/s w=%.0fms", lam, 1e3*w),
		MeanBatch:      b,
		Utilization:    rho,
		WaitP50Seconds: wait50,
		WaitP99Seconds: wait99,
		P50Seconds:     wait50 + congestion + batchService + overhead,
		P99Seconds:     wait99 + congestion + batchService + overhead,
		ThroughputRPS:  thr,
		Saturated:      saturated,
	}
}

// QueueingSweep evaluates the model over an arrival-rate × batch-window grid
// — the planning table behind the -batch-window flag: for each offered load,
// how much window buys how much batch occupancy at what p99 cost. Rows are
// ordered rate-major (all windows for the first rate, then the next).
func QueueingSweep(sc QueueingScenario, rates, windows []float64) []QueueingEstimate {
	out := make([]QueueingEstimate, 0, len(rates)*len(windows))
	for _, r := range rates {
		for _, w := range windows {
			pt := sc
			pt.ArrivalRPS = r
			pt.WindowSeconds = w
			out = append(out, EstimateContinuousBatching(pt))
		}
	}
	return out
}
