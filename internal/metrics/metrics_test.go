package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

func randImg(seed int64, c, h, w int) *tensor.Tensor {
	r := rng.New(seed)
	t := tensor.New(c, h, w)
	r.FillUniform(t.Data, 0, 1)
	return t
}

func TestMSEBasics(t *testing.T) {
	a := tensor.FromSlice([]float64{0, 1, 0, 1}, 1, 2, 2)
	b := tensor.FromSlice([]float64{1, 1, 0, 0}, 1, 2, 2)
	if got := MSE(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MSE = %v", got)
	}
	if MSE(a, a) != 0 {
		t.Error("MSE(x,x) must be 0")
	}
}

func TestPSNRIdentical(t *testing.T) {
	a := randImg(1, 3, 8, 8)
	if !math.IsInf(PSNR(a, a), 1) {
		t.Error("PSNR of identical images must be +Inf")
	}
	if got := PSNRCapped(a, a, 60); got != 60 {
		t.Errorf("capped PSNR = %v", got)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	a := tensor.New(1, 4, 4)
	b := tensor.Full(0.1, 1, 4, 4)
	// MSE = 0.01 → PSNR = 20 dB.
	if got := PSNR(a, b); math.Abs(got-20) > 1e-9 {
		t.Errorf("PSNR = %v, want 20", got)
	}
}

// Property: PSNR is symmetric and decreases as noise grows.
func TestPSNRMonotoneInNoise(t *testing.T) {
	f := func(seed int64) bool {
		a := randImg(seed, 3, 8, 8)
		r := rng.New(seed + 1)
		small := a.Clone()
		big := a.Clone()
		for i := range small.Data {
			n := r.Norm()
			small.Data[i] += 0.01 * n
			big.Data[i] += 0.2 * n
		}
		if math.Abs(PSNR(a, small)-PSNR(small, a)) > 1e-9 {
			return false
		}
		return PSNR(a, small) > PSNR(a, big)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSSIMSelfIsOne(t *testing.T) {
	a := randImg(2, 3, 16, 16)
	if got := SSIM(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("SSIM(x,x) = %v", got)
	}
}

func TestSSIMRange(t *testing.T) {
	f := func(seed int64) bool {
		a := randImg(seed, 3, 12, 12)
		b := randImg(seed+99, 3, 12, 12)
		s := SSIM(a, b)
		return s >= -1 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSSIMSymmetric(t *testing.T) {
	a, b := randImg(5, 3, 10, 10), randImg(6, 3, 10, 10)
	if math.Abs(SSIM(a, b)-SSIM(b, a)) > 1e-9 {
		t.Error("SSIM must be symmetric")
	}
}

func TestSSIMDetectsStructureLoss(t *testing.T) {
	// A structured image vs a noisy copy should score higher than vs an
	// unrelated noise image.
	img := tensor.New(1, 16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			img.Set(0.5+0.5*math.Sin(float64(x)/2), 0, y, x)
		}
	}
	r := rng.New(7)
	noisy := img.Clone()
	for i := range noisy.Data {
		noisy.Data[i] += r.Normal(0, 0.05)
	}
	unrelated := tensor.New(1, 16, 16)
	r.FillUniform(unrelated.Data, 0, 1)
	if SSIM(img, noisy) <= SSIM(img, unrelated) {
		t.Error("noisy copy should be more structurally similar than unrelated noise")
	}
}

func TestSSIMSmallImage(t *testing.T) {
	a, b := randImg(8, 3, 4, 4), randImg(9, 3, 4, 4)
	s := SSIM(a, b) // window shrinks to 4, must not panic
	if s < -1 || s > 1 {
		t.Errorf("small-image SSIM out of range: %v", s)
	}
}

// TestSSIMNonSquare covers rectangular images, including both narrow axes
// and the degenerate cases where one dimension is smaller than the 8-pixel
// window (the window must shrink to min(h, w), not either axis alone).
func TestSSIMNonSquare(t *testing.T) {
	for _, dims := range [][2]int{{16, 10}, {10, 16}, {4, 16}, {16, 4}, {5, 9}} {
		h, w := dims[0], dims[1]
		a := randImg(int64(10*h+w), 1, h, w)
		if got := SSIM(a, a); math.Abs(got-1) > 1e-9 {
			t.Errorf("SSIM(x,x) on %dx%d = %v, want 1", h, w, got)
		}
		b := randImg(int64(10*h+w+1), 1, h, w)
		s := SSIM(a, b)
		if s < -1 || s > 1 {
			t.Errorf("SSIM on %dx%d out of range: %v", h, w, s)
		}
		if math.Abs(SSIM(a, b)-SSIM(b, a)) > 1e-9 {
			t.Errorf("SSIM on %dx%d not symmetric", h, w)
		}
	}
	// Transposing both images must not change the score (the window is
	// square, so the sliding positions are mirrored one-to-one).
	a, b := randImg(41, 1, 12, 7), randImg(42, 1, 12, 7)
	at, bt := transpose(a), transpose(b)
	if math.Abs(SSIM(a, b)-SSIM(at, bt)) > 1e-9 {
		t.Errorf("SSIM changed under transposition: %v vs %v", SSIM(a, b), SSIM(at, bt))
	}
}

// transpose swaps the spatial axes of a [C,H,W] image.
func transpose(x *tensor.Tensor) *tensor.Tensor {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	out := tensor.New(c, w, h)
	for ci := 0; ci < c; ci++ {
		for y := 0; y < h; y++ {
			for xx := 0; xx < w; xx++ {
				out.Set(x.At(ci, y, xx), ci, xx, y)
			}
		}
	}
	return out
}

func TestBatchMetrics(t *testing.T) {
	r := rng.New(10)
	a := tensor.New(4, 3, 8, 8)
	r.FillUniform(a.Data, 0, 1)
	if got := BatchSSIM(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("BatchSSIM self = %v", got)
	}
	if got := BatchPSNR(a, a); got != 60 {
		t.Errorf("BatchPSNR self = %v", got)
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := tensor.FromSlice([]float64{1, 0}, 2)
	b := tensor.FromSlice([]float64{0, 1}, 2)
	if got := CosineSimilarity(a, b); math.Abs(got) > 1e-12 {
		t.Errorf("orthogonal cosine = %v", got)
	}
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self cosine = %v", got)
	}
	if got := CosineSimilarity(a, a.Scale(-2)); math.Abs(got+1) > 1e-12 {
		t.Errorf("opposite cosine = %v", got)
	}
	zero := tensor.New(2)
	if got := CosineSimilarity(a, zero); got != 0 {
		t.Errorf("zero-vector cosine = %v", got)
	}
}

// Property: cosine similarity is scale-invariant.
func TestCosineScaleInvariant(t *testing.T) {
	f := func(seed int64, scaleRaw uint8) bool {
		scale := 0.1 + float64(scaleRaw%50)
		a := randImg(seed, 1, 4, 4)
		b := randImg(seed+3, 1, 4, 4)
		return math.Abs(CosineSimilarity(a, b)-CosineSimilarity(a.Scale(scale), b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConfusionMatrix(t *testing.T) {
	m := ConfusionMatrix([]int{0, 1, 1, 2}, []int{0, 1, 2, 2}, 3)
	if m[0][0] != 1 || m[1][1] != 1 || m[2][1] != 1 || m[2][2] != 1 {
		t.Errorf("confusion = %v", m)
	}
	if got := AccuracyFromCounts(m); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("accuracy = %v", got)
	}
}

func TestAccuracyFromCountsEmpty(t *testing.T) {
	if AccuracyFromCounts([][]int{}) != 0 {
		t.Error("empty matrix accuracy should be 0")
	}
}
