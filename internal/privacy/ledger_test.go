package privacy

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic Now hook.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestLedgerConfigValidation(t *testing.T) {
	bad := []LedgerConfig{
		{},                                    // no budget
		{BudgetEps: -1},                       // negative budget
		{BudgetEps: 1, Alpha: 1},              // order below 2
		{BudgetEps: 1, QueryEps: -0.1},        // negative query loss
		{BudgetEps: 1, SecretFraction: 1.5},   // fraction outside [0,1]
		{BudgetEps: 1, SecretFraction: -0.5},  // fraction outside [0,1]
		{BudgetEps: 1, RefillPerSec: -0.0001}, // negative refill
	}
	for i, cfg := range bad {
		if _, err := NewLedger(cfg); err == nil {
			t.Fatalf("config %d: expected error, got none", i)
		}
	}
}

func TestLedgerDefaultsAndCharge(t *testing.T) {
	l, err := NewLedger(LedgerConfig{BudgetEps: 2, SecretFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if l.Alpha() != 2 {
		t.Fatalf("default alpha = %d, want 2", l.Alpha())
	}
	if l.BudgetEps() != 2 {
		t.Fatalf("BudgetEps = %v", l.BudgetEps())
	}
	// The per-row charge is the amplified per-query loss at the pMixed
	// q_budget split.
	want := SubsampleEps(2.0/DefaultQueryBudget, 0.25, 2)
	near(t, l.RowChargeEps(), want, 1e-9, "RowChargeEps")

	a := l.AccountFor("client-a")
	if a != l.AccountFor("client-a") {
		t.Fatal("AccountFor must return a stable account per identity")
	}
	if a == l.AccountFor("client-b") {
		t.Fatal("distinct identities must get distinct accounts")
	}
	if a.ID() != "client-a" {
		t.Fatalf("account ID = %q", a.ID())
	}
	spent, ok := l.debit(a, 3*l.rowCharge)
	if !ok || spent != 3*l.rowCharge {
		t.Fatalf("debit = (%d, %v), want (%d, true)", spent, ok, 3*l.rowCharge)
	}
	near(t, a.SpentEps(), 3*l.RowChargeEps(), 1e-9, "SpentEps after 3 rows")
}

func TestLedgerDebitRollsBackPastBudget(t *testing.T) {
	l, err := NewLedger(LedgerConfig{BudgetEps: 1, QueryEps: 0.4, SecretFraction: 0})
	if err != nil {
		t.Fatal(err)
	}
	a := l.AccountFor("c")
	if _, ok := l.debit(a, 2*l.rowCharge); !ok {
		t.Fatal("first debit of 0.8 against budget 1 must fit")
	}
	spent, ok := l.debit(a, l.rowCharge)
	if ok {
		t.Fatal("debit past the budget must refuse")
	}
	// The refused charge is rolled back: the account still holds 0.8.
	near(t, float64(spent)/epsScale, 0.8, 1e-9, "spent after rollback")
	near(t, a.SpentEps(), 0.8, 1e-9, "SpentEps after rollback")
}

func TestLedgerEvictsLeastRecentlyConnected(t *testing.T) {
	clk := newFakeClock()
	l, err := NewLedger(LedgerConfig{BudgetEps: 1, Shards: 1, MaxClients: 2, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	l.AccountFor("old")
	clk.Advance(time.Second)
	l.AccountFor("mid")
	clk.Advance(time.Second)
	l.AccountFor("new") // evicts "old", the least recently connected
	st := l.Stats()
	if st.Clients != 2 || st.Evictions != 1 {
		t.Fatalf("after eviction: clients=%d evictions=%d, want 2, 1", st.Clients, st.Evictions)
	}
	for _, cb := range l.Snapshot() {
		if cb.Client == "old" {
			t.Fatal("evicted account still tracked")
		}
	}
	// Reconnecting the evicted client gets a fresh (empty) account — the
	// documented capacity/patient-adversary trade-off.
	if got := l.AccountFor("old").SpentEps(); got != 0 {
		t.Fatalf("re-admitted account starts at %v, want 0", got)
	}
}

func TestLedgerRefillRecoversBudget(t *testing.T) {
	clk := newFakeClock()
	l, err := NewLedger(LedgerConfig{BudgetEps: 1, QueryEps: 0.1, SecretFraction: 0, RefillPerSec: 0.1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	a := l.AccountFor("c")
	l.debit(a, 5*l.rowCharge) // spent 0.5
	clk.Advance(2 * time.Second)
	l.debit(a, l.rowCharge) // refills 0.2, charges 0.1
	near(t, a.SpentEps(), 0.4, 1e-6, "spent after refill")
	// Refill never credits below zero.
	clk.Advance(time.Hour)
	l.debit(a, l.rowCharge)
	near(t, a.SpentEps(), 0.1, 1e-6, "spent floored at the fresh charge")
}

func TestLedgerSnapshotAndTopSpenders(t *testing.T) {
	l, err := NewLedger(LedgerConfig{BudgetEps: 1, QueryEps: 0.01, SecretFraction: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, rows := range []int64{1, 5, 3} {
		a := l.AccountFor(fmt.Sprintf("client-%d", i))
		l.debit(a, rows*l.rowCharge)
		a.rows.Add(uint64(rows))
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot of %d accounts, want 3", len(snap))
	}
	if snap[0].Client != "client-1" || snap[1].Client != "client-2" || snap[2].Client != "client-0" {
		t.Fatalf("snapshot not sorted by drain: %+v", snap)
	}
	near(t, snap[0].SpentEps, 0.05, 1e-9, "top spender spent")
	near(t, snap[0].Drained, 0.05, 1e-9, "top spender drained fraction")
	near(t, snap[0].RemainingEps, 0.95, 1e-9, "top spender remaining")
	if snap[0].Rows != 5 {
		t.Fatalf("top spender rows = %d, want 5", snap[0].Rows)
	}
	top := l.TopSpenders(1)
	if len(top) != 1 || top[0].Client != "client-1" {
		t.Fatalf("TopSpenders(1) = %+v", top)
	}
	if got := l.TopSpenders(10); len(got) != 3 {
		t.Fatalf("TopSpenders past population = %d entries, want 3", len(got))
	}
}

func TestLedgerStatsReflectConfig(t *testing.T) {
	l, err := NewLedger(LedgerConfig{BudgetEps: 4, Alpha: 8, QueryEps: 0.001, SecretFraction: 0.5, MaxClients: 128, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Alpha != 8 || st.BudgetEps != 4 || st.QueryEps != 0.001 || st.SecretFrac != 0.5 {
		t.Fatalf("stats do not reflect config: %+v", st)
	}
	// Shards round up to a power of two; capacity divides across them.
	if len(l.shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(l.shards))
	}
	if st.MaxClients != 128 {
		t.Fatalf("effective capacity = %d, want 128", st.MaxClients)
	}
	// Fixed-point rounds the charge to nano-ε resolution.
	near(t, st.RowEps, SubsampleEps(0.001, 0.5, 8), 1e-9, "row charge in stats")
}

// TestLedgerConcurrentChargesRace hammers one account and the account map
// from many goroutines — the -race witness for the sharded design.
func TestLedgerConcurrentChargesRace(t *testing.T) {
	l, err := NewLedger(LedgerConfig{BudgetEps: 1e9, QueryEps: 1, SecretFraction: 0, MaxClients: 64, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	shared := l.AccountFor("shared")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.debit(shared, l.rowCharge)
				a := l.AccountFor(fmt.Sprintf("client-%d-%d", g, i%32))
				l.debit(a, l.rowCharge)
				if i%100 == 0 {
					l.Snapshot()
					l.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	near(t, shared.SpentEps(), 8*500, 1e-6, "shared account total")
}
