package comm

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"ensembler/internal/faultpoint"
	"ensembler/internal/nn"
	"ensembler/internal/tensor"
	"ensembler/internal/trace"
)

// DialOption configures how a client connection is established.
type DialOption func(*dialOptions)

type dialOptions struct {
	wire      WireFormat
	clientID  string
	faultSite *faultpoint.Site // nil: only the global comm/dial site applies
}

// WithWire selects the client's wire protocol: WireBinary (default),
// WireBinaryF32 for float32 payloads (half the bytes, ~1e-7 relative
// feature rounding), or WireGob for servers predating the binary codec.
func WithWire(f WireFormat) DialOption {
	return func(o *dialOptions) { o.wire = f }
}

// WithClientID declares the connection's client identity (1-64 printable
// ASCII bytes) during the v4 wire handshake, so a budget-guarded server
// charges this connection's privacy spend to a stable per-client account
// instead of an address bucket. Silently ignored by pre-v4 servers and on
// the gob protocol; the dial fails if the ID is not wire-valid.
func WithClientID(id string) DialOption {
	return func(o *dialOptions) { o.clientID = id }
}

// Client performs remote ensemble inference: local head+noise, remote
// bodies, local secret selection and tail. A Client is bound to one
// connection and is safe for one goroutine at a time (the head and tail
// networks cache forward state); use a Pool for concurrent callers.
type Client struct {
	conn  *countingConn
	codec clientCodec
	// broken is set after any transport failure: the wire stream may hold a
	// partial or stale message, so reusing the connection could silently
	// return the previous request's response. A broken client fails fast
	// until redialed.
	broken bool
	// cfgEpoch tags which Pool configuration wired this client; the pool
	// discards clients wired under a superseded configuration on release.
	cfgEpoch uint64
	// servedModel/servedVersion record what the server reports serving on
	// the last successful round trip.
	servedModel   string
	servedVersion int
	// serverWindow is the continuous-batching window the server advertised
	// in its hello ack (zero on v1 servers, gob connections, and servers
	// without a dispatcher). Retry loops use it to floor their backoff: a
	// retry sooner than the window lands in the same congested batch cycle.
	serverWindow time.Duration

	// lastTraceID is the trace ID the server echoed on the last successful
	// round trip (0 when the request was untraced or the connection predates
	// wire v3).
	lastTraceID uint64

	// Model and Version route requests on a multi-model server. The zero
	// values ("", 0) mean the server's default model at its current version
	// — byte-identical on the wire to a pre-registry client's request — and
	// a positive Version pins one published version.
	Model   string
	Version int

	// Trace, when nonzero, rides each request as its wire trace context
	// (v3+ connections only; dropped silently on older and gob connections,
	// so it is always safe to set). The server stitches its leg of the
	// request under the same trace ID — see internal/trace. Like Model and
	// Version, it tags every subsequent request until changed.
	Trace trace.Context

	// ComputeFeatures produces the transmitted features for an image batch
	// (head + noise).
	ComputeFeatures func(x *tensor.Tensor) *tensor.Tensor
	// Select applies the secret selector to the N returned feature
	// matrices, producing the tail input.
	Select func(features []*tensor.Tensor) *tensor.Tensor
	// Tail maps the selected features to logits.
	Tail *nn.Network
}

// Served reports which model and version answered the client's last
// successful request — how a caller observes a zero-downtime hot swap. A
// single-model server reports "" and 0.
func (c *Client) Served() (model string, version int) {
	return c.servedModel, c.servedVersion
}

// Dial connects a client to a comm.Server, negotiating the binary wire
// codec by default; pass WithWire to select float32 payloads or the legacy
// gob protocol.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	return DialContext(context.Background(), addr, opts...)
}

// DialContext connects a client to a comm.Server, honoring the context's
// deadline and cancellation during connection establishment (including the
// wire-codec hello exchange).
func DialContext(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	var o dialOptions
	for _, opt := range opts {
		opt(&o)
	}
	if err := fpDial.Inject(); err != nil {
		return nil, fmt.Errorf("comm: dialing %s: %w", addr, err)
	}
	if o.faultSite != nil {
		if err := o.faultSite.Inject(); err != nil {
			return nil, fmt.Errorf("comm: dialing %s: %w", addr, err)
		}
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: dialing %s: %w", addr, err)
	}
	c, err := newClientConn(ctx, conn, o.wire, o.clientID)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// helloTimeout bounds the wire negotiation when the dialing context carries
// no deadline: the hello is one small local round trip, so a server that
// stays mute for this long is not going to answer requests either — fail
// the dial instead of hanging it.
const helloTimeout = 10 * time.Second

// newClientConn wraps conn in a client speaking the requested wire format,
// performing the binary hello under the context's deadline (or a default
// handshake timeout when the context has none).
func newClientConn(ctx context.Context, conn net.Conn, wire WireFormat, clientID string) (*Client, error) {
	if wire == WireGob {
		return NewLocalClient(conn), nil
	}
	cc := &countingConn{Conn: conn}
	deadline := time.Now().Add(helloTimeout)
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	cc.SetDeadline(deadline)
	if ctx.Done() != nil {
		// Plain cancellation (no deadline) must also abort a hello blocked
		// on a stalled server — expiring the deadline fails the pending I/O.
		stop := make(chan struct{})
		watcher := make(chan struct{})
		go func() {
			defer close(watcher)
			select {
			case <-ctx.Done():
				cc.SetDeadline(time.Unix(1, 0))
			case <-stop:
			}
		}()
		defer func() {
			close(stop)
			<-watcher
			cc.SetDeadline(time.Time{})
		}()
	} else {
		defer cc.SetDeadline(time.Time{})
	}
	br := bufio.NewReaderSize(cc, 1<<16)
	ver, f32OK, window, err := negotiateClient(cc, br, wire == WireBinaryF32, clientID)
	if err != nil {
		return nil, err
	}
	// The server is untrusted: a hostile ack advertising an absurd window
	// must not stretch retry backoff, so clamp to the ceiling honest
	// servers are themselves held to.
	if window > maxBatchWindow {
		window = maxBatchWindow
	}
	codec := &binClientCodec{
		binFramer: binFramer{w: cc, r: br, f32: wire == WireBinaryF32 && f32OK, code: ver >= 2},
		traceOK:   ver >= 3,
	}
	return &Client{conn: cc, codec: codec, serverWindow: window}, nil
}

// LastTraceID reports the trace ID the server echoed on the client's last
// successful round trip — the caller's proof that the server joined its leg
// to the trace. Zero when the request was untraced or the connection
// predates wire version 3.
func (c *Client) LastTraceID() uint64 { return c.lastTraceID }

// ServerBatchWindow reports the continuous-batching window the server
// advertised during the wire handshake — zero when the server runs no
// dispatcher or the connection predates version 2 of the binary protocol.
// Pool retry backoff is floored by this value.
func (c *Client) ServerBatchWindow() time.Duration { return c.serverWindow }

// NewLocalClient wraps an existing connection in a gob-protocol client —
// the legacy wire format, kept for tests over net.Pipe and for hand-rolled
// server loops. Dialed clients default to the binary codec instead.
func NewLocalClient(conn net.Conn) *Client {
	cc := &countingConn{Conn: conn}
	return &Client{conn: cc, codec: &gobClientCodec{enc: gob.NewEncoder(cc), dec: gob.NewDecoder(cc)}}
}

// gobClientCodec speaks the legacy gob protocol.
type gobClientCodec struct {
	enc *gob.Encoder
	dec *gob.Decoder
}

// writeRequest ignores the trace context: gob has no place to carry it, and
// adding a Request field would change the type descriptor every legacy
// client and server exchange — the byte-compatibility the trace extension
// is designed never to touch.
func (c *gobClientCodec) writeRequest(req *Request, _ trace.Context) error { return c.enc.Encode(req) }
func (c *gobClientCodec) readResponse(resp *Response) (uint64, error) {
	*resp = Response{}
	return 0, c.dec.Decode(resp)
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip performs one encode/decode exchange under ctx: a context
// deadline maps onto the connection deadline and cancellation aborts the
// blocked I/O. Any transport failure — including a context-induced abort —
// leaves the wire stream in an unknown state, so it breaks the client.
func (c *Client) roundTrip(ctx context.Context, req *Request) (*Response, error) {
	if c.broken {
		return nil, fmt.Errorf("comm: connection broken by an earlier failed request; redial")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("comm: %w", err)
	}
	// The watcher is only needed when the context can actually fire; the
	// common context.Background() path skips the goroutine entirely.
	if ctx.Done() != nil {
		if d, ok := ctx.Deadline(); ok {
			c.conn.SetDeadline(d)
		}
		stop := make(chan struct{})
		watcher := make(chan struct{})
		go func() {
			defer close(watcher)
			select {
			case <-ctx.Done():
				// Expiring the deadline fails the pending read/write.
				c.conn.SetDeadline(time.Unix(1, 0))
			case <-stop:
			}
		}()
		// Join the watcher before clearing the deadline: a cancellation
		// racing the return would otherwise leave an expired deadline
		// behind on a connection whose round trip succeeded.
		defer func() {
			close(stop)
			<-watcher
			c.conn.SetDeadline(time.Time{})
		}()
	}
	if err := c.codec.writeRequest(req, c.Trace); err != nil {
		return nil, c.fail(ctx, fmt.Errorf("comm: sending features: %w", err))
	}
	var resp Response
	echo, err := c.codec.readResponse(&resp)
	if err != nil {
		return nil, c.fail(ctx, fmt.Errorf("comm: receiving features: %w", err))
	}
	c.lastTraceID = echo
	// A server-reported error leaves the stream synchronized; the
	// connection stays usable. A load-shed verdict surfaces as
	// ErrOverloaded so callers (and Pool's retry loop) can distinguish
	// "back off and retry" from a terminal request failure; a privacy-budget
	// refusal surfaces as ErrBudgetExhausted, which retries must NOT chase —
	// the budget does not come back by asking again.
	if resp.Err != "" {
		switch resp.Code {
		case CodeOverloaded:
			return nil, fmt.Errorf("comm: %w: %s", ErrOverloaded, resp.Err)
		case CodeBudgetExhausted:
			return nil, fmt.Errorf("comm: %w: %s", ErrBudgetExhausted, resp.Err)
		}
		return nil, fmt.Errorf("comm: server error: %s", resp.Err)
	}
	c.servedModel, c.servedVersion = resp.Model, resp.Version
	return &resp, nil
}

// fail marks the connection unusable after a transport error — the stream
// may hold a stale response that a later request would otherwise consume as
// its own — and prefers the context's verdict when the failure was induced
// by cancellation or deadline expiry.
func (c *Client) fail(ctx context.Context, err error) error {
	c.broken = true
	c.conn.Close()
	if ctx.Err() != nil {
		return fmt.Errorf("comm: %w", ctx.Err())
	}
	return err
}

// Infer runs the full collaborative pipeline for an image batch and returns
// logits plus the measured timing breakdown.
func (c *Client) Infer(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, Timing, error) {
	var t Timing
	upBefore, downBefore := c.conn.up, c.conn.down

	start := time.Now()
	features := c.ComputeFeatures(x)
	t.Client += time.Since(start)

	netStart := time.Now()
	resp, err := c.roundTrip(ctx, &Request{Model: c.Model, Version: c.Version, Features: features})
	t.RoundTrip = time.Since(netStart)
	if err != nil {
		return nil, t, err
	}

	start = time.Now()
	logits, err := c.finish(resp.Features)
	t.Client += time.Since(start)
	if err != nil {
		return nil, t, err
	}
	t.BytesUp = c.conn.up - upBefore
	t.BytesDown = c.conn.down - downBefore
	return logits, t, nil
}

// finish runs the client-side selection and tail over one response's
// feature list. The server is the adversary of the threat model, so its
// response is as untrusted as a request is to the server: tensors are
// structurally validated, and a panic in Select/Tail (e.g. a response
// carrying the wrong number of bodies for the selector) becomes an error
// instead of crashing the client application.
func (c *Client) finish(features []*tensor.Tensor) (logits *tensor.Tensor, err error) {
	for i, f := range features {
		if err := validateTensor(f); err != nil {
			return nil, fmt.Errorf("comm: server response tensor %d: %w", i, err)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			logits, err = nil, fmt.Errorf("comm: server response rejected: %v", r)
		}
	}()
	return c.Tail.Forward(c.Select(features), false), nil
}

// Exchanged is one raw feature round trip's result: the per-body feature
// list plus which model epoch actually served it. The epoch matters to
// sharded callers: a scatter-gather across K servers must reject a gather
// whose shards answered from different versions (a fleet mid-reload), or
// it would silently mix body weights from two pipelines into one result.
type Exchanged struct {
	Features []*tensor.Tensor
	Model    string
	Version  int
}

// Exchange performs the raw feature round trip beneath Infer: it transmits
// already-computed features and returns the per-body feature list the server
// answered with, structurally validated but unselected. This is the
// primitive a sharded deployment builds on — the scatter-gather client
// computes the head output once, Exchanges it with every shard, and applies
// the secret selector over the reassembled body order itself, so no single
// connection ever carries enough context to see the selection.
func (c *Client) Exchange(ctx context.Context, features *tensor.Tensor) (*Exchanged, Timing, error) {
	var t Timing
	upBefore, downBefore := c.conn.up, c.conn.down
	netStart := time.Now()
	resp, err := c.roundTrip(ctx, &Request{Model: c.Model, Version: c.Version, Features: features})
	t.RoundTrip = time.Since(netStart)
	if err != nil {
		return nil, t, err
	}
	for i, f := range resp.Features {
		if err := validateTensor(f); err != nil {
			return nil, t, fmt.Errorf("comm: server response tensor %d: %w", i, err)
		}
	}
	t.BytesUp = c.conn.up - upBefore
	t.BytesDown = c.conn.down - downBefore
	return &Exchanged{Features: resp.Features, Model: resp.Model, Version: resp.Version}, t, nil
}

// InferBatch runs the collaborative pipeline for B image batches in a single
// round trip and returns one logits tensor per input. The server stacks the
// transmitted features, runs each body once over the stack, and splits the
// results back — amortizing both the protocol overhead and the per-body
// dispatch across the whole batch.
func (c *Client) InferBatch(ctx context.Context, xs []*tensor.Tensor) ([]*tensor.Tensor, Timing, error) {
	var t Timing
	if len(xs) == 0 {
		return nil, t, fmt.Errorf("comm: empty inference batch")
	}
	upBefore, downBefore := c.conn.up, c.conn.down

	start := time.Now()
	inputs := make([]*tensor.Tensor, len(xs))
	for i, x := range xs {
		inputs[i] = c.ComputeFeatures(x)
	}
	t.Client += time.Since(start)

	netStart := time.Now()
	resp, err := c.roundTrip(ctx, &Request{Model: c.Model, Version: c.Version, Inputs: inputs})
	t.RoundTrip = time.Since(netStart)
	if err != nil {
		return nil, t, err
	}
	if len(resp.Outputs) != len(xs) {
		return nil, t, fmt.Errorf("comm: server returned %d outputs for %d inputs", len(resp.Outputs), len(xs))
	}

	start = time.Now()
	logits := make([]*tensor.Tensor, len(xs))
	for i, features := range resp.Outputs {
		out, err := c.finish(features)
		if err != nil {
			t.Client += time.Since(start)
			return nil, t, fmt.Errorf("comm: output %d: %w", i, err)
		}
		logits[i] = out
	}
	t.Client += time.Since(start)
	t.BytesUp = c.conn.up - upBefore
	t.BytesDown = c.conn.down - downBefore
	return logits, t, nil
}
