package shard

import (
	"strconv"
	"time"

	"ensembler/internal/ensemble"
	"ensembler/internal/telemetry"
)

// RegisterMetrics exports the fleet's per-shard health into a telemetry
// registry: one labelled series per shard for liveness, requests, failures,
// and hedges. Everything is computed at scrape time from the same counters
// Health() snapshots, so the request path pays nothing — a scrape takes each
// shard's health mutex briefly, which is contended once per request at most.
//
// The labels deliberately name the shard index and its body range but never
// anything selection-dependent: the metrics endpoint is part of the server-
// side observable surface, and the secret subset must stay invisible there
// too (a scraper learning "shard 2 is down yet requests succeed" learns only
// what a wire observer already could).
func (c *Client) RegisterMetrics(reg *telemetry.Registry) {
	for k := range c.pools {
		h := c.health[k]
		labels := telemetry.Labels{
			"shard":  strconv.Itoa(k + 1),
			"bodies": c.cfg.Ranges[k].String(),
		}
		reg.GaugeFunc("ensembler_shard_up",
			"1 while the shard's circuit is closed, 0 once it opens.",
			labels, func() float64 {
				state, _, _, _ := h.br.snapshot(time.Now())
				if state != BreakerClosed {
					return 0
				}
				return 1
			})
		reg.GaugeFunc("ensembler_shard_breaker_state",
			"Circuit breaker state: 0 closed, 1 open, 2 half-open.",
			labels, func() float64 {
				state, _, _, _ := h.br.snapshot(time.Now())
				return float64(state)
			})
		reg.CounterFunc("ensembler_shard_breaker_opens_total",
			"Times the shard's circuit opened (threshold trip or failed probe).",
			labels, func() float64 {
				_, _, opens, _ := h.br.snapshot(time.Now())
				return float64(opens)
			})
		reg.CounterFunc("ensembler_shard_short_circuits_total",
			"Requests answered by an open circuit without touching the wire.",
			labels, func() float64 {
				h.mu.Lock()
				defer h.mu.Unlock()
				return float64(h.shortCircuits)
			})
		reg.CounterFunc("ensembler_shard_requests_total",
			"Feature exchanges attempted against the shard.",
			labels, func() float64 {
				h.mu.Lock()
				defer h.mu.Unlock()
				return float64(h.requests)
			})
		reg.CounterFunc("ensembler_shard_failures_total",
			"Feature exchanges that exhausted their attempts.",
			labels, func() float64 {
				h.mu.Lock()
				defer h.mu.Unlock()
				return float64(h.failures)
			})
		reg.CounterFunc("ensembler_shard_hedged_total",
			"Hedge requests launched against stragglers.",
			labels, func() float64 {
				h.mu.Lock()
				defer h.mu.Unlock()
				return float64(h.hedged)
			})
	}
}

// RotateTo re-wires the scatter-gather client to a rotated pipeline — the
// fleet half of a selector rotation's fan-out. The registry publishes the
// rotated pipeline (new secret subset, optionally re-tuned stage-3
// networks); the shard servers never change, so the only propagation a
// rotation needs in a fleet is exactly this client-side swap. In-flight
// requests finish on the runtime they acquired; subsequent requests build
// runtimes cloned from the rotated pipeline.
func (c *Client) RotateTo(e *ensemble.Ensembler) {
	c.Reconfigure(PipelineRuntime(e))
}
