package comm

// Fault-injection sites at the wire layer's trust boundaries. Every site is
// a zero-cost no-op unless armed through internal/faultpoint (one atomic
// load on the disabled path — BenchmarkServeRequestLoopFaultpointsDisabled
// pins that the serving loop stays 0 allocs/op with these compiled in).
//
// Site semantics:
//
//	comm/accept          freshly accepted connection dropped (error) or the
//	                     accept loop stalled (delay)
//	comm/hello           server-side negotiation failure: the peer sees a
//	                     connection that dies before or during the hello
//	comm/frame-read      request decode failure: the handler treats it as a
//	                     closed/poisoned connection
//	comm/frame-write     response write faults — error (response lost),
//	                     partial-write (torn frame then close), conn-reset
//	                     (torn frame then abrupt close), delay
//	comm/dispatch-intake forced admission-control shed: the honest 429 path
//	comm/budget-charge   budget verdict failure: the request is refused with
//	                     a server error before compute
//	comm/dial            client-side dial failure before the socket opens
import (
	"io"
	"net"
	"time"

	"ensembler/internal/faultpoint"
)

var (
	fpAccept     = faultpoint.New("comm/accept")
	fpHello      = faultpoint.New("comm/hello")
	fpFrameRead  = faultpoint.New("comm/frame-read")
	fpFrameWrite = faultpoint.New("comm/frame-write")
	fpDispatch   = faultpoint.New("comm/dispatch-intake")
	fpBudget     = faultpoint.New("comm/budget-charge")
	fpDial       = faultpoint.New("comm/dial")
)

// injectFrameWrite applies one triggered frame-write outcome to a pending
// frame. It reports handled=true when the fault consumed the write (the
// caller must not write the frame) and returns the error the caller should
// surface; a Delay outcome sleeps and reports handled=false so the real
// write proceeds.
func injectFrameWrite(w io.Writer, frame []byte, out faultpoint.Outcome) (handled bool, err error) {
	switch out.Kind {
	case faultpoint.Delay:
		time.Sleep(out.Delay)
		return false, nil
	case faultpoint.PartialWrite:
		// A torn frame: emit a prefix, then fail the write. The handler
		// closes the connection; the peer sees a frame that never
		// completes.
		if n := out.CutLen(len(frame)); n > 0 {
			_, _ = w.Write(frame[:n])
		}
		return true, out.Err
	case faultpoint.ConnReset:
		// A torn frame followed by an abrupt close mid-stream — the
		// harshest variant: the peer's read fails with EOF/ECONNRESET with
		// a half-frame already buffered.
		if n := out.CutLen(len(frame)); n > 0 {
			_, _ = w.Write(frame[:n])
		}
		if c, ok := w.(net.Conn); ok {
			_ = c.Close()
		}
		return true, out.Err
	default: // Error (Panic already fired inside the site)
		return true, out.Err
	}
}

// WithDialFault attaches a named fault site to this dial configuration, so
// callers get per-destination dial faults on top of the global comm/dial
// site (the shard client registers shard/dial/<k> per fleet member). The
// site is created on first use and shared by name like every other site.
func WithDialFault(name string) DialOption {
	site := faultpoint.New(name)
	return func(o *dialOptions) { o.faultSite = site }
}

// faultWriter wraps the legacy gob encoder's writer so frame-write faults
// reach the gob path too (gob owns its own framing, so the binary codec's
// frame-level injection can't see it). The per-Write cost when disarmed is
// the same single atomic load as every other site.
type faultWriter struct {
	w io.Writer // the connection
}

func (fw faultWriter) Write(p []byte) (int, error) {
	if out, ok := fpFrameWrite.Fire(); ok {
		if handled, err := injectFrameWrite(fw.w, p, out); handled {
			return 0, err
		}
	}
	return fw.w.Write(p)
}
