package comm

// The race-proof queueing suite for the continuous-batching dispatcher.
// Everything here runs under -race in CI: cross-connection coalescing,
// graceful shutdown with a non-empty intake, admission-control fairness
// under a deliberate firehose, and the zero-allocation pin for the
// coalesced serve path.

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"ensembler/internal/nn"
	"ensembler/internal/telemetry"
	"ensembler/internal/tensor"
	"ensembler/internal/trace"
)

// startBatchingServer boots a dispatcher-enabled server on loopback and
// returns it with its address and the Serve error channel.
func startBatchingServer(t *testing.T, ctx context.Context, nBodies int, opts ...ServerOption) (*Server, string, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := NewServer(codecBodies(nBodies), opts...)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ctx, ln) }()
	return srv, ln.Addr().String(), errCh
}

// referenceBodies recomputes what the server's bodies produce for x —
// codecBodies is seeded, so a private rebuild gives the exact expectation.
func referenceBodies(nBodies int, x *tensor.Tensor) []*tensor.Tensor {
	bodies := codecBodies(nBodies)
	out := make([]*tensor.Tensor, nBodies)
	for i, b := range bodies {
		out[i] = b.Forward(x, false)
	}
	return out
}

// TestCrossConnectionCoalescing is the heart of the suite: M independent
// connections issue single-feature requests concurrently; the dispatcher
// must stack requests from different connections into shared batches
// (witnessed by the coalesced-batch histogram and MaxCoalesced > 1) and
// every client must still receive exactly its own rows — the per-job split
// is where a coalescing bug would corrupt results, so each client uses a
// distinct row count and checks bit-exactness against a local rebuild.
func TestCrossConnectionCoalescing(t *testing.T) {
	const (
		nBodies = 2
		clients = 6
		rounds  = 5
	)
	m := NewServerMetrics(telemetry.NewRegistry())
	srv, addr, _ := startBatchingServer(t, context.Background(), nBodies,
		WithBatchWindow(20*time.Millisecond), WithMetrics(m))

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			rows := 1 + id%3
			x := wireTensor(int64(100+id), rows, 4, 8, 8)
			want := referenceBodies(nBodies, x)
			for r := 0; r < rounds; r++ {
				ex, _, err := client.Exchange(context.Background(), x)
				if err != nil {
					errs <- fmt.Errorf("client %d round %d: %w", id, r, err)
					return
				}
				if len(ex.Features) != nBodies {
					errs <- fmt.Errorf("client %d round %d: %d feature maps, want %d", id, r, len(ex.Features), nBodies)
					return
				}
				for b := range want {
					if !ex.Features[b].AllClose(want[b], 0) {
						errs <- fmt.Errorf("client %d round %d: body %d features diverge from reference", id, r, b)
						return
					}
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	stats := srv.DispatcherStats()
	if !stats.Enabled {
		t.Fatal("dispatcher not enabled")
	}
	if stats.MaxCoalesced < 2 {
		t.Errorf("MaxCoalesced = %d: no cross-connection batch was ever formed", stats.MaxCoalesced)
	}
	if m.CoalescedBatch.Count() == 0 {
		t.Error("coalesced-batch histogram recorded nothing: batching did not reach telemetry")
	}
	if stats.PeakDepth > stats.MaxQueue {
		t.Errorf("peak intake depth %d exceeded the %d bound", stats.PeakDepth, stats.MaxQueue)
	}
	if stats.Sheds != 0 {
		t.Errorf("%d requests shed under nominal load", stats.Sheds)
	}
}

// TestDispatcherShutdownWithQueuedRequests cancels the server mid-window,
// while requests sit in the intake queue: every one of them must resolve —
// a response or an honest error, never a hang — and Serve itself must
// return. The watchdog turns a hang into a failure instead of a timeout.
func TestDispatcherShutdownWithQueuedRequests(t *testing.T) {
	const nBodies = 2
	ctx, cancel := context.WithCancel(context.Background())
	_, addr, errCh := startBatchingServer(t, ctx, nBodies,
		WithBatchWindow(300*time.Millisecond))

	const clients = 4
	var wg sync.WaitGroup
	outcomes := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client, err := Dial(addr)
			if err != nil {
				outcomes <- err
				return
			}
			defer client.Close()
			x := wireTensor(int64(200+id), 1, 4, 8, 8)
			_, _, err = client.Exchange(context.Background(), x)
			outcomes <- err // success and error are both acceptable; silence is not
		}(id)
	}
	// Let the requests reach the intake (the 300ms window guarantees they
	// are still queued), then pull the plug.
	time.Sleep(50 * time.Millisecond)
	cancel()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("queued requests hung through shutdown")
	}
	close(outcomes)
	answered := 0
	for err := range outcomes {
		if err == nil {
			answered++
		}
	}
	// The drain guarantee is stronger than "no hang": a request that was
	// decoded before cancellation computes and flushes.
	if answered == 0 {
		t.Error("no queued request was answered through the drain")
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Errorf("Serve returned %v on graceful shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
}

// TestDispatcherFairnessAndShedding pits a pipelining firehose (raw wire,
// never waiting for responses) against a polite trickle client on a server
// with a tiny intake bound. Admission control must shed from the firehose —
// the longest queue — with the honest overload response, while the trickle
// client is never shed and its latency stays bounded by window + service,
// not by the firehose's backlog.
func TestDispatcherFairnessAndShedding(t *testing.T) {
	const (
		nBodies  = 2
		maxQueue = 4
		burst    = 48
	)
	m := NewServerMetrics(telemetry.NewRegistry())
	srv, addr, _ := startBatchingServer(t, context.Background(), nBodies,
		WithBatchWindow(10*time.Millisecond), WithMaxQueue(maxQueue), WithMetrics(m))

	// The firehose: hello, then `burst` request frames written back to back,
	// responses read only afterwards — per-connection pipelining no polite
	// client produces.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := helloBytes(wireVersion, 0)
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	ack := make([]byte, 8)
	if _, err := io.ReadFull(conn, ack); err != nil {
		t.Fatal(err)
	}
	frame, err := appendRequest([]byte{0, 0, 0, 0}, &Request{Features: wireTensor(300, 1, 4, 8, 8)}, false, trace.Context{})
	if err != nil {
		t.Fatal(err)
	}
	fireDone := make(chan error, 1)
	sheds := make(chan int, 1)
	go func() {
		for i := 0; i < burst; i++ {
			if err := writeFrame(conn, frame); err != nil {
				fireDone <- err
				return
			}
		}
		// Every pipelined request must be answered — shed or served.
		shed := 0
		var decBuf []byte
		for i := 0; i < burst; i++ {
			var body []byte
			decBuf, body, err = readFrame(conn, decBuf)
			if err != nil {
				fireDone <- fmt.Errorf("response %d: %w", i, err)
				return
			}
			var resp Response
			if err := parseResponseInto(body, &resp, true, nil); err != nil {
				fireDone <- fmt.Errorf("response %d: %w", i, err)
				return
			}
			if resp.Code == CodeOverloaded {
				shed++
			} else if resp.Err != "" {
				fireDone <- fmt.Errorf("response %d: unexpected error %q", i, resp.Err)
				return
			}
		}
		sheds <- shed
		fireDone <- nil
	}()

	// The trickle client: sequential, one request at a time, against the
	// saturated server. Fairness means it is never the shed victim.
	trickle, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer trickle.Close()
	x := wireTensor(301, 1, 4, 8, 8)
	const trickleReqs = 12
	var worst time.Duration
	for i := 0; i < trickleReqs; i++ {
		start := time.Now()
		_, _, err := trickle.Exchange(context.Background(), x)
		if d := time.Since(start); d > worst {
			worst = d
		}
		if err != nil {
			t.Fatalf("trickle request %d failed: %v (the polite client must never be shed)", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	select {
	case err := <-fireDone:
		if err != nil {
			t.Fatalf("firehose: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("firehose responses hung: a pipelined request was dropped without a reply")
	}
	if shed := <-sheds; shed == 0 {
		t.Error("firehose overfilled a 4-deep intake without a single shed")
	}

	stats := srv.DispatcherStats()
	if stats.Sheds == 0 || m.Shed.Value() == 0 {
		t.Errorf("shed counters (stats %d, telemetry %d) recorded nothing", stats.Sheds, m.Shed.Value())
	}
	if stats.PeakDepth > maxQueue {
		t.Errorf("peak intake depth %d exceeded the %d bound", stats.PeakDepth, maxQueue)
	}
	// Generous bound — race mode inflates compute 5-10× — but categorically
	// tighter than waiting out the firehose's 48-request backlog would be.
	if worst > 5*time.Second {
		t.Errorf("trickle client's worst latency %v: starved behind the firehose", worst)
	}
}

// TestDispatchCoalescedZeroAllocs extends the PR 5 invariant to the new
// path: decode K requests from K connections, serve them as one coalesced
// batch, encode every response — zero heap allocations at steady state.
func TestDispatchCoalescedZeroAllocs(t *testing.T) {
	const (
		nBodies = 3
		K       = 4
	)
	srv := NewServer(codecBodies(nBodies), WithWorkers(2),
		WithReplicas(func() []*nn.Network { return codecBodies(nBodies) }))
	body, err := appendRequest(nil, &Request{Features: wireTensor(310, 2, 4, 8, 8)}, false, trace.Context{})
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*job, K)
	for i := range jobs {
		jobs[i] = newJob()
	}
	b := &dispatchBatch{}
	replicas := newReplicaCache(PrecisionF64)
	encBuf := make([]byte, 0, 1<<16)
	cycle := func() {
		for _, j := range jobs {
			if err := parseRequestInto(body, &j.req, (*arenaAlloc)(&j.arena), j, nil); err != nil {
				t.Fatal(err)
			}
			b.jobs = append(b.jobs, j)
		}
		srv.serveBatch(b, replicas)
		for _, j := range jobs {
			resp := <-j.reply
			if resp.Err != "" {
				t.Fatal(resp.Err)
			}
			var e error
			encBuf, e = appendResponse(append(encBuf[:0], 0, 0, 0, 0), resp, false, true, 0)
			if e != nil {
				t.Fatal(e)
			}
			j.reset()
		}
		b.reset()
	}
	cycle() // warm-up: clone replicas, size arenas and buffers
	cycle()
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Errorf("steady-state coalesced serve loop allocates %v times per batch, want 0", allocs)
	}
}

// TestCoalescedBatchErrorIsolation pins the validation semantics of a mixed
// batch: a member whose tensor lies about its shape gets its own error
// response while the valid members of the same batch are still served
// correctly.
func TestCoalescedBatchErrorIsolation(t *testing.T) {
	const nBodies = 2
	srv := NewServer(codecBodies(nBodies), WithWorkers(2),
		WithReplicas(func() []*nn.Network { return codecBodies(nBodies) }))
	replicas := newReplicaCache(PrecisionF64)

	good := newJob()
	good.req = Request{Features: wireTensor(320, 1, 4, 8, 8)}
	bad := newJob()
	bad.req = Request{Features: &tensor.Tensor{Shape: []int{1, 4, 8, 8}, Data: make([]float64, 3)}}
	good2 := newJob()
	good2.req = Request{Features: wireTensor(321, 2, 4, 8, 8)}

	b := &dispatchBatch{jobs: []*job{good, bad, good2}}
	srv.serveBatch(b, replicas)

	if resp := <-good.reply; resp.Err != "" || len(resp.Features) != nBodies {
		t.Errorf("valid member 0 not served: err=%q features=%d", resp.Err, len(resp.Features))
	}
	if resp := <-bad.reply; resp.Err == "" {
		t.Error("lying member accepted into the stacked pass")
	}
	resp := <-good2.reply
	if resp.Err != "" || len(resp.Features) != nBodies {
		t.Fatalf("valid member 2 not served: err=%q", resp.Err)
	}
	want := referenceBodies(nBodies, good2.req.Features)
	for i := range want {
		if !resp.Features[i].AllClose(want[i], 0) {
			t.Errorf("member 2 body %d features diverge after mixed-batch split", i)
		}
	}
}

// TestFailBatchRepliesEveryPendingJob pins the panic-recovery backstop of
// the coalesced path: failBatch must put the error on every job that has no
// response yet — and only those, so a member already answered (e.g. rejected
// during validation) is not overwritten or double-replied.
func TestFailBatchRepliesEveryPendingJob(t *testing.T) {
	answered := newJob()
	answered.resp = Response{Err: "already rejected"}
	pending := newJob()
	pending2 := newJob()
	b := &dispatchBatch{jobs: []*job{answered, pending, pending2}}

	failBatch(b, "stacked pass panicked")
	for i, j := range []*job{pending, pending2} {
		if j.resp.Err != "stacked pass panicked" {
			t.Errorf("pending job %d resp = %q, want the batch failure", i, j.resp.Err)
		}
	}
	if answered.resp.Err != "already rejected" {
		t.Errorf("already-answered job overwritten with %q", answered.resp.Err)
	}
}

// BenchmarkServeRequestLoopBatched measures the coalesced serving loop —
// K cross-connection requests decoded, stacked, forwarded once, split, and
// encoded — and reports its allocation count, which CI pins at 0 allocs/op
// alongside BenchmarkServeRequestLoop.
func BenchmarkServeRequestLoopBatched(b *testing.B) {
	const (
		nBodies = 4
		K       = 4
	)
	srv := NewServer(codecBodies(nBodies), WithWorkers(2),
		WithReplicas(func() []*nn.Network { return codecBodies(nBodies) }))
	body, err := appendRequest(nil, &Request{Features: wireTensor(330, 1, 4, 8, 8)}, false, trace.Context{})
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]*job, K)
	for i := range jobs {
		jobs[i] = newJob()
	}
	batch := &dispatchBatch{}
	replicas := newReplicaCache(PrecisionF64)
	encBuf := make([]byte, 0, 1<<20)
	cycle := func() {
		for _, j := range jobs {
			if err := parseRequestInto(body, &j.req, (*arenaAlloc)(&j.arena), j, nil); err != nil {
				b.Fatal(err)
			}
			batch.jobs = append(batch.jobs, j)
		}
		srv.serveBatch(batch, replicas)
		for _, j := range jobs {
			resp := <-j.reply
			if resp.Err != "" {
				b.Fatal(resp.Err)
			}
			var e error
			encBuf, e = appendResponse(append(encBuf[:0], 0, 0, 0, 0), resp, false, true, 0)
			if e != nil {
				b.Fatal(e)
			}
			j.reset()
		}
		batch.reset()
	}
	cycle()
	cycle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}
