// Command ensembler-serve hosts the N server bodies of a trained pipeline
// over TCP — the cloud half of the collaborative-inference deployment. The
// secret selector and the client tail stay with whoever holds the model
// file; the server only ever sees intermediate features and returns all N
// feature vectors.
//
//	ensembler-serve -model ensembler.gob -addr :7946
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"ensembler/internal/comm"
	"ensembler/internal/ensemble"
)

func main() {
	modelPath := flag.String("model", "ensembler.gob", "trained pipeline from ensembler-train")
	addr := flag.String("addr", "127.0.0.1:7946", "listen address")
	flag.Parse()

	e, err := ensemble.LoadFile(*modelPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loading model: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listening: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("serving %d ensemble bodies on %s (selector stays client-side)\n", e.Cfg.N, ln.Addr())
	if err := comm.NewServer(e.Bodies()).Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
}
