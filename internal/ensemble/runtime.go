package ensemble

import (
	"fmt"

	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// The serving-side cloning support in this file exists because the nn
// substrate caches forward activations inside each layer: a network is safe
// for one goroutine at a time, so concurrent serving needs independent
// copies with identical weights but private caches. CloneBodies feeds the
// comm server's per-worker replicas; NewClientRuntime feeds one pooled
// client connection.

// CloneBodies builds a fresh replica of the N server bodies: identical
// weights and batch-norm running statistics, but brand-new layer objects
// with private forward caches. Each call returns an independent set, so a
// serving worker pool calls it once per worker.
func (e *Ensembler) CloneBodies() []*nn.Network {
	return e.CloneBodyRange(0, len(e.Members))
}

// CloneBodyRange clones only the bodies in [lo, hi) — what a shard server
// hosting a disjoint subset of the ensemble replicates per worker. Cloning
// exactly the hosted subset is what keeps a K-shard deployment's total
// replica memory equal to one monolithic server's, instead of K times it.
func (e *Ensembler) CloneBodyRange(lo, hi int) []*nn.Network {
	if lo < 0 || hi > len(e.Members) || lo >= hi {
		panic(fmt.Sprintf("ensemble: body range [%d,%d) out of bounds for N=%d", lo, hi, len(e.Members)))
	}
	out := make([]*nn.Network, hi-lo)
	r := rng.New(0) // initialization is immediately overwritten
	for i := lo; i < hi; i++ {
		clone := e.Cfg.Arch.NewBody(fmt.Sprintf("replica%d.body", i), r)
		if err := clone.CopyStateFrom(e.Members[i].Body); err != nil {
			panic(fmt.Sprintf("ensemble: cloning body %d: %v", i, err))
		}
		out[i-lo] = clone
	}
	return out
}

// ClientRuntime is an independent copy of the client-side half of a trained
// pipeline — final head, fixed noise, secret selector, and tail — safe for
// exclusive use by one goroutine. The selector is shared (it is read-only at
// inference time); the networks are cloned.
type ClientRuntime struct {
	Head     *nn.Network
	Noise    *nn.AdditiveNoise
	Selector *Selector
	Tail     *nn.Network
}

// NewClientRuntime clones the client-side networks of a trained pipeline.
// Each call returns an independent runtime, so a client connection pool
// calls it once per connection.
func (e *Ensembler) NewClientRuntime() *ClientRuntime {
	r := rng.New(0) // initialization is immediately overwritten
	head := e.Cfg.Arch.NewHead("runtime.head", r)
	if err := head.CopyStateFrom(e.Head); err != nil {
		panic(fmt.Sprintf("ensemble: cloning head: %v", err))
	}
	tail := e.Cfg.Arch.NewTail("runtime.tail", e.Cfg.P, e.Cfg.Dropout, r)
	if err := tail.CopyStateFrom(e.Tail); err != nil {
		panic(fmt.Sprintf("ensemble: cloning tail: %v", err))
	}
	rt := &ClientRuntime{Head: head, Selector: e.Selector, Tail: tail}
	if e.Noise != nil {
		c, h, w := e.Cfg.Arch.HeadOutShape()
		rt.Noise = nn.NewAdditiveNoise("runtime.noise", nn.NoiseFixed, c, h, w, e.Cfg.Sigma, rng.New(0))
		copy(rt.Noise.Noise.Value.Data, e.Noise.Noise.Value.Data)
	}
	return rt
}

// Features computes the transmitted intermediate representation
// Mc,h(x)+noise, mirroring Ensembler.ClientFeatures on the cloned networks.
func (rt *ClientRuntime) Features(x *tensor.Tensor) *tensor.Tensor {
	f := rt.Head.Forward(x, false)
	if rt.Noise != nil {
		f = rt.Noise.Forward(f, false)
	}
	return f
}

// Select applies the secret selection (Eq. 1) to the N server feature
// matrices.
func (rt *ClientRuntime) Select(features []*tensor.Tensor) *tensor.Tensor {
	return rt.Selector.Apply(features)
}

// Predict runs the full pipeline locally through the cloned networks —
// the runtime analogue of Ensembler.Predict, used to cross-check remote
// results.
func (rt *ClientRuntime) Predict(x *tensor.Tensor, bodies []*nn.Network) *tensor.Tensor {
	feats := make([]*tensor.Tensor, len(bodies))
	f := rt.Features(x)
	for i, b := range bodies {
		feats[i] = b.Forward(f, false)
	}
	return rt.Tail.Forward(rt.Select(feats), false)
}
