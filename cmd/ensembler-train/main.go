// Command ensembler-train runs the full three-stage Ensembler training
// pipeline on a synthetic workload and saves the trained pipeline (all N
// member networks, the secret selection, and the final head/noise/tail) to
// a file consumable by ensembler-attack and ensembler-serve.
//
// With -model-dir the pipeline is published into a versioned registry
// directory instead; adding -shards K additionally records the intended
// K-shard fleet layout in the version's manifest, so every
// ensembler-serve -shard k/K fleet member can validate its slice of the
// ensemble against what training committed to.
//
//	ensembler-train -kind cifar10 -n 10 -p 4 -out model.gob
//	ensembler-train -kind cifar10 -n 9 -p 3 -model-dir models/ -shards 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ensembler/internal/data"
	"ensembler/internal/ensemble"
	"ensembler/internal/registry"
	"ensembler/internal/split"
)

// kindFromName maps the CLI workload name to a data.Kind.
func kindFromName(name string) (data.Kind, error) {
	switch name {
	case "cifar10":
		return data.CIFAR10Like, nil
	case "cifar100":
		return data.CIFAR100Like, nil
	case "celeba":
		return data.CelebALike, nil
	}
	return 0, fmt.Errorf("unknown workload %q (want cifar10, cifar100, or celeba)", name)
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "ensembler-train: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: parse, train, persist, returning
// errors instead of exiting.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ensembler-train", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kindName := fs.String("kind", "cifar10", "workload: cifar10, cifar100, celeba")
	n := fs.Int("n", 5, "ensemble size N")
	p := fs.Int("p", 2, "secretly selected subset size P")
	sigma := fs.Float64("sigma", 0.05, "fixed noise std σ")
	lambda := fs.Float64("lambda", 1.0, "Eq. 3 regularizer strength λ")
	trainN := fs.Int("train", 448, "private training samples")
	epochs1 := fs.Int("stage1-epochs", 5, "Stage 1 epochs per member")
	epochs3 := fs.Int("stage3-epochs", 8, "Stage 3 epochs")
	seed := fs.Int64("seed", 1, "training seed")
	out := fs.String("out", "ensembler.gob", "output model path (single-file mode)")
	modelDir := fs.String("model-dir", "", "publish into a versioned model registry directory instead of -out")
	modelName := fs.String("model-name", "", "model name inside -model-dir (default: the workload kind)")
	shards := fs.Int("shards", 0, "record a K-shard fleet layout in the manifest (registry mode; 0 = unsharded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *n <= 0 || *p <= 0 || *p > *n {
		return fmt.Errorf("invalid ensemble shape N=%d P=%d (want 0 < P ≤ N)", *n, *p)
	}
	if *shards != 0 && *modelDir == "" {
		return fmt.Errorf("-shards records the fleet layout in a registry manifest; it requires -model-dir")
	}
	if *shards < 0 || *shards > *n {
		return fmt.Errorf("invalid shard count %d for N=%d (want 0..N)", *shards, *n)
	}

	kind, err := kindFromName(*kindName)
	if err != nil {
		return err
	}
	sp := data.Generate(data.Config{Kind: kind, Train: *trainN, Aux: 1, Test: 256, Seed: *seed})
	cfg := ensemble.Config{
		Arch: split.DefaultArch(kind), N: *n, P: *p, Sigma: *sigma, Lambda: *lambda, Seed: *seed,
		Stage1:      split.TrainOptions{Epochs: *epochs1, BatchSize: 32, LR: 0.05},
		Stage3:      split.TrainOptions{Epochs: *epochs3, BatchSize: 32, LR: 0.05},
		Stage1Noise: true,
	}
	fmt.Fprintf(stdout, "training Ensembler on %s (N=%d, P=%d, σ=%.2f, λ=%.1f)...\n", kind, *n, *p, *sigma, *lambda)
	e := ensemble.Train(cfg, sp.Train, stdout)
	fmt.Fprintf(stdout, "test accuracy: %.3f\n", e.Accuracy(sp.Test))
	if *modelDir != "" {
		// Registry mode: the store assigns the next version and writes the
		// artifact atomically, so a serving ensembler-serve -model-dir picks
		// it up on its next SIGHUP with zero downtime.
		store, err := registry.Create(*modelDir)
		if err != nil {
			return fmt.Errorf("opening model dir: %w", err)
		}
		name := *modelName
		if name == "" {
			name = *kindName
		}
		var v int
		if *shards > 0 {
			v, err = store.PublishSharded(name, e, *shards)
		} else {
			v, err = store.Publish(name, e)
		}
		if err != nil {
			return fmt.Errorf("publishing: %w", err)
		}
		fmt.Fprintf(stdout, "published %s v%d to %s", name, v, *modelDir)
		if *shards > 0 {
			fmt.Fprintf(stdout, " for a %d-shard fleet", *shards)
		}
		fmt.Fprintln(stdout, " (selection stays inside the artifact — guard it)")
		return nil
	}
	if err := e.SaveFile(*out); err != nil {
		return fmt.Errorf("saving: %w", err)
	}
	fmt.Fprintf(stdout, "saved pipeline to %s (selection stays inside the file — guard it)\n", *out)
	return nil
}
