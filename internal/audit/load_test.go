package audit_test

import (
	"context"
	"net"
	"sync"
	"testing"

	"ensembler/internal/audit"
	"ensembler/internal/comm"
	"ensembler/internal/commtest"
	"ensembler/internal/data"
	"ensembler/internal/registry"
	"ensembler/internal/tensor"
)

// TestSamplingUnderEightClientLoad is the audit loop's serving integration
// test: a registry-backed server with the reservoir sampler attached via
// the comm observer hook, eight concurrent clients hammering it, and an
// audit (stub scorer, so -race runs fast) consuming the mirrored features
// mid-load. Every request must succeed — sampling is observation, never
// interference — and the reservoir must hold real transmitted features.
func TestSamplingUnderEightClientLoad(t *testing.T) {
	const (
		nBodies  = 4
		clients  = 8
		requests = 25
	)
	arch := commtest.TinyArch()
	reg := registry.New(nil)
	pipe := commtest.Pipeline(arch, nBodies, 2, 61)
	if _, err := reg.Publish("m", pipe); err != nil {
		t.Fatal(err)
	}
	sampler := audit.NewSampler(3, 16, 1)
	srv := comm.NewModelServer(reg, comm.WithWorkers(4), comm.WithObserver(sampler))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	defer func() {
		cancel()
		ln.Close()
		<-served
	}()

	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, H: 8, Train: 8, Aux: 16, Test: 16, Seed: 62})
	rotations := 0
	var rotMu sync.Mutex
	auditor, err := audit.New(audit.Config{
		Registry:   reg,
		Model:      "m",
		Sampler:    sampler,
		MinSamples: 4,
		Aux:        sp.Aux,
		Eval:       sp.Test,
		Threshold:  0.3,
		Breaches:   1,
		Alpha:      1,
		Rotate: func(cause string) error {
			rotMu.Lock()
			rotations++
			rotMu.Unlock()
			return nil
		},
		Scorer: func(ep *registry.Epoch, observed *tensor.Tensor) (float64, float64, error) {
			// The stub asserts what the real attack would consume: stacked
			// live features of the served shape.
			if observed == nil {
				t.Error("audit ran without mirrored features")
				return 0, 0, nil
			}
			c, h, w := arch.HeadC, arch.H, arch.W
			if observed.Shape[1] != c || observed.Shape[2] != h || observed.Shape[3] != w {
				t.Errorf("observed shape %v, want [*, %d, %d, %d]", observed.Shape, c, h, w)
			}
			return 0.9, 10, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var failures sync.Map
	for cidx := 0; cidx < clients; cidx++ {
		wg.Add(1)
		go func(cidx int) {
			defer wg.Done()
			client, err := comm.Dial(ln.Addr().String())
			if err != nil {
				failures.Store(cidx, err)
				return
			}
			defer client.Close()
			rt := pipe.NewClientRuntime()
			client.ComputeFeatures = rt.Features
			client.Select = rt.Select
			client.Tail = rt.Tail
			x := tensor.New(1, arch.InC, arch.H, arch.W)
			copy(x.Data, sp.Test.Image(cidx%sp.Test.Len()).Data)
			for i := 0; i < requests; i++ {
				if _, _, err := client.Infer(ctx, x); err != nil {
					failures.Store(cidx, err)
					return
				}
				if i == requests/2 && cidx == 0 {
					auditor.RunOnce() // audit mid-load, concurrent with traffic
				}
			}
		}(cidx)
	}
	wg.Wait()
	failures.Range(func(k, v any) bool {
		t.Errorf("client %v failed: %v", k, v)
		return true
	})

	seen, sampled := sampler.Counts()
	if seen != clients*requests {
		t.Errorf("sampler saw %d features, want %d", seen, clients*requests)
	}
	if wantMin := seen / 3; sampled != wantMin {
		t.Errorf("sampled = %d, want every 3rd of %d = %d", sampled, seen, wantMin)
	}
	st := auditor.State()
	if st.Audits+st.Rotations == 0 && st.Skipped == 0 {
		t.Errorf("auditor never ran: %+v", st)
	}
	rotMu.Lock()
	defer rotMu.Unlock()
	if rotations != 1 {
		t.Errorf("rotations = %d, want 1 (single mid-load audit over threshold)", rotations)
	}
}
