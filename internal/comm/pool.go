package comm

import (
	"context"
	"fmt"
	"sync"

	"ensembler/internal/tensor"
	"ensembler/internal/trace"
)

// Pool is a fixed-capacity pool of client connections to one server, safe
// for concurrent use. Because a Client's head and tail networks cache
// forward state, the pool cannot share one wired Client across goroutines;
// instead each pooled connection is wired independently by the configure
// hook (typically from ensemble.NewClientRuntime, which clones the
// client-side networks).
type Pool struct {
	addr     string
	dialOpts []DialOption

	// Retry governs how Infer/InferBatch/Exchange respond to a load-shed
	// (ErrOverloaded) response: jittered exponential backoff, bounded
	// attempts (see RetryPolicy). Set before the pool takes traffic;
	// NewPool installs DefaultRetryPolicy, and RetryPolicy{} disables
	// retries entirely.
	Retry RetryPolicy

	mu        sync.Mutex
	configure func(*Client) error
	cfgEpoch  uint64 // bumped by Reconfigure; stale clients are discarded on release
	dialed    int
	size      int
	closed    bool
	idle      chan *Client
	freed     chan struct{} // one token per discarded connection: wakes a waiter to redial
	closing   chan struct{} // closed by Close to wake goroutines waiting in get
}

// NewPool creates a pool of up to size connections to addr. Connections are
// dialed lazily on demand; configure wires each fresh Client (its
// ComputeFeatures, Select, and Tail) before first use. Dial options (e.g.
// WithWire) apply to every connection the pool establishes.
func NewPool(addr string, size int, configure func(*Client) error, opts ...DialOption) (*Pool, error) {
	if size <= 0 {
		return nil, fmt.Errorf("comm: pool size must be positive, got %d", size)
	}
	if configure == nil {
		return nil, fmt.Errorf("comm: pool needs a configure hook to wire clients")
	}
	return &Pool{
		addr:      addr,
		dialOpts:  opts,
		Retry:     DefaultRetryPolicy(),
		configure: configure,
		size:      size,
		idle:      make(chan *Client, size),
		freed:     make(chan struct{}, size),
		closing:   make(chan struct{}),
	}, nil
}

// get acquires a wired client: an idle one if available, a fresh dial while
// under capacity, otherwise it waits for a release — either an idle
// connection coming back or a discarded one freeing dial capacity.
func (p *Pool) get(ctx context.Context) (*Client, error) {
	for {
		select {
		case c := <-p.idle:
			return c, nil
		default:
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, fmt.Errorf("comm: pool is closed")
		}
		if p.dialed < p.size {
			p.dialed++
			// Capture the configuration under the lock: Reconfigure may swap
			// it while we dial, and a client wired under the old hook must be
			// tagged with the old epoch so put discards it.
			configure, epoch := p.configure, p.cfgEpoch
			p.mu.Unlock()
			c, err := DialContext(ctx, p.addr, p.dialOpts...)
			if err == nil {
				c.cfgEpoch = epoch
				err = configure(c)
				if err != nil {
					c.Close()
				}
			}
			if err != nil {
				p.release()
				return nil, err
			}
			return c, nil
		}
		p.mu.Unlock()
		select {
		case c := <-p.idle:
			return c, nil
		case <-p.freed:
			// A broken connection was discarded; loop back and redial.
		case <-ctx.Done():
			return nil, fmt.Errorf("comm: waiting for pooled connection: %w", ctx.Err())
		case <-p.closing:
			// In-use connections are discarded at release once the pool
			// closes, so no idle send is coming — fail instead of waiting
			// forever.
			return nil, fmt.Errorf("comm: pool is closed")
		}
	}
}

// release gives one unit of dial capacity back and wakes a waiter so it can
// redial; must be called with p.mu unlocked.
func (p *Pool) release() {
	p.mu.Lock()
	p.dialed--
	p.mu.Unlock()
	select {
	case p.freed <- struct{}{}:
	default: // a wake token is already pending for every waiter that needs one
	}
}

// put releases a client back to the pool; broken connections and clients
// wired under a superseded configuration are discarded (freeing dial
// capacity and waking a waiter) so the next get dials a replacement. The
// idle channel's capacity equals the pool size, so the send under the lock
// never blocks.
func (p *Pool) put(c *Client) {
	p.mu.Lock()
	if c.broken || p.closed || c.cfgEpoch != p.cfgEpoch {
		p.mu.Unlock()
		c.Close()
		p.release()
		return
	}
	p.idle <- c
	p.mu.Unlock()
}

// Reconfigure swaps the hook that wires fresh clients and retires every
// existing connection: idle ones are closed immediately, in-use ones are
// discarded as they are released. Callers never observe an interruption —
// subsequent gets dial and wire replacements under the new hook. This is
// the client-side half of a hot swap: after the registry publishes a
// rotated pipeline, Reconfigure points the pool at the new client runtime
// (head, noise, selector, tail) while requests keep flowing.
func (p *Pool) Reconfigure(configure func(*Client) error) {
	if configure == nil {
		return
	}
	p.mu.Lock()
	p.configure = configure
	p.cfgEpoch++
	var stale []*Client
	for {
		select {
		case c := <-p.idle:
			stale = append(stale, c)
			p.dialed--
		default:
			p.mu.Unlock()
			for _, c := range stale {
				c.Close()
				// Wake one waiter per freed slot so callers queued at
				// capacity redial under the new configuration.
				select {
				case p.freed <- struct{}{}:
				default:
				}
			}
			return
		}
	}
}

// Infer runs one single-input round trip on a pooled connection. Benign
// failures (server-side rejections, pre-flight context errors) leave the
// stream synchronized, so the connection returns to the pool; only a
// transport failure discards it. A load-shed response (ErrOverloaded)
// retries under the pool's RetryPolicy before surfacing.
func (p *Pool) Infer(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, Timing, error) {
	var logits *tensor.Tensor
	var t Timing
	err := p.retryOverload(ctx, func(c *Client) error {
		var opErr error
		logits, t, opErr = c.Infer(ctx, x)
		return opErr
	})
	return logits, t, err
}

// InferBatch runs one batched round trip on a pooled connection, with the
// same benign-vs-transport release policy and overload retries as Infer.
func (p *Pool) InferBatch(ctx context.Context, xs []*tensor.Tensor) ([]*tensor.Tensor, Timing, error) {
	var logits []*tensor.Tensor
	var t Timing
	err := p.retryOverload(ctx, func(c *Client) error {
		var opErr error
		logits, t, opErr = c.InferBatch(ctx, xs)
		return opErr
	})
	return logits, t, err
}

// Exchange runs one raw feature round trip on a pooled connection (see
// Client.Exchange), with the same benign-vs-transport release policy and
// overload retries as Infer.
func (p *Pool) Exchange(ctx context.Context, features *tensor.Tensor) (*Exchanged, Timing, error) {
	var ex *Exchanged
	var t Timing
	err := p.retryOverload(ctx, func(c *Client) error {
		var opErr error
		ex, t, opErr = c.Exchange(ctx, features)
		return opErr
	})
	return ex, t, err
}

// ExchangeTraced is Exchange with a trace context attached to the round
// trip, so the server's leg of the request joins the caller's trace (wire
// v3+; silently untraced on older servers). The context is cleared from the
// pooled client before release — a recycled connection must never tag a
// stranger's request with a stale trace ID.
func (p *Pool) ExchangeTraced(ctx context.Context, features *tensor.Tensor, tc trace.Context) (*Exchanged, Timing, error) {
	var ex *Exchanged
	var t Timing
	err := p.retryOverload(ctx, func(c *Client) error {
		c.Trace = tc
		var opErr error
		ex, t, opErr = c.Exchange(ctx, features)
		c.Trace = trace.Context{}
		return opErr
	})
	return ex, t, err
}

// Close tears down every idle connection and marks the pool closed; in-use
// connections are closed as they are released.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.closing)
	}
	for {
		select {
		case c := <-p.idle:
			p.dialed--
			c.Close()
		default:
			return nil
		}
	}
}
