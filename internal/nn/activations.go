package nn

import (
	"math"

	"ensembler/internal/tensor"
)

// ReLU is the rectified linear activation max(0, x).
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward clamps negatives to zero, caching the pass-through mask.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward zeroes gradients where the forward input was non-positive.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// LeakyReLU is max(x, alpha*x); used in the attacker's decoder where dead
// units would stall inversion training.
type LeakyReLU struct {
	Alpha float64
	x     *tensor.Tensor
}

// NewLeakyReLU returns a LeakyReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// Forward applies the leaky rectifier.
func (l *LeakyReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.x = x
	return x.Apply(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return l.Alpha * v
	})
}

// Backward scales negative-side gradients by Alpha.
func (l *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i, v := range l.x.Data {
		if v <= 0 {
			out.Data[i] *= l.Alpha
		}
	}
	return out
}

// Params returns nil; LeakyReLU has no parameters.
func (l *LeakyReLU) Params() []*Param { return nil }

// Sigmoid squashes to (0,1); the decoder's output layer uses it so
// reconstructions live in image range.
type Sigmoid struct {
	y *tensor.Tensor
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward computes 1/(1+e^-x).
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s.y = x.Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	return s.y
}

// Backward multiplies by y(1-y).
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i, y := range s.y.Data {
		out.Data[i] *= y * (1 - y)
	}
	return out
}

// Params returns nil; Sigmoid has no parameters.
func (s *Sigmoid) Params() []*Param { return nil }

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	y *tensor.Tensor
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward computes tanh(x).
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	t.y = x.Apply(math.Tanh)
	return t.y
}

// Backward multiplies by 1 - y².
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i, y := range t.y.Data {
		out.Data[i] *= 1 - y*y
	}
	return out
}

// Params returns nil; Tanh has no parameters.
func (t *Tanh) Params() []*Param { return nil }
