package privacy

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// ladderGuard builds a guard over a drain-only ledger where every row costs
// exactly 0.1 of a 1.0 budget: ten rows exhaust a client.
func ladderGuard(t *testing.T, cfg PolicyConfig) *Guard {
	t.Helper()
	l, err := NewLedger(LedgerConfig{BudgetEps: 1, QueryEps: 0.1, SecretFraction: 0})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGuard(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGuardConfigValidation(t *testing.T) {
	l, err := NewLedger(LedgerConfig{BudgetEps: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := []PolicyConfig{
		{NoiseSigma: -1},
		{NoiseAt: 1.5},
		{RotateAt: 0.6, NoiseAt: 0.5},      // rotate above noise
		{Hysteresis: 1},                    // hysteresis outside [0,1)
		{NoiseAt: 0.5, RotateAt: -0.1 + 1}, // rotate at 0.9 > noise
	}
	for i, cfg := range bad {
		if _, err := NewGuard(l, cfg); err == nil {
			t.Fatalf("config %d: expected error, got none", i)
		}
	}
	if _, err := NewGuard(nil, PolicyConfig{}); err == nil {
		t.Fatal("guard without a ledger must fail")
	}
}

// TestEscalationLadder walks one heavy client through the full ladder:
// clean service, base noise at half budget, doubled noise plus one rotation
// request at the rotate threshold, then honest refusals at exhaustion.
func TestEscalationLadder(t *testing.T) {
	var mu sync.Mutex
	var causes []string
	rotated := make(chan struct{}, 8)
	g := ladderGuard(t, PolicyConfig{
		NoiseSigma: 0.1,
		NoiseAt:    0.5,
		RotateAt:   0.2,
		Rotate: func(cause string) {
			mu.Lock()
			causes = append(causes, cause)
			mu.Unlock()
			rotated <- struct{}{}
		},
	})
	a := g.AccountFor("heavy")

	for i := 1; i <= 4; i++ { // remaining 0.9 … 0.6: clean
		if v := g.Charge(a, 1); v.Refuse || v.Sigma != 0 {
			t.Fatalf("charge %d: verdict %+v, want clean service", i, v)
		}
	}
	for i := 5; i <= 7; i++ { // remaining 0.5 … 0.3: base noise
		if v := g.Charge(a, 1); v.Refuse || v.Sigma != 0.1 {
			t.Fatalf("charge %d: verdict %+v, want sigma 0.1", i, v)
		}
	}
	for i := 8; i <= 10; i++ { // remaining 0.2 … 0.0: doubled noise + rotation
		if v := g.Charge(a, 1); v.Refuse || v.Sigma != 0.2 {
			t.Fatalf("charge %d: verdict %+v, want sigma 0.2", i, v)
		}
	}
	select {
	case <-rotated:
	case <-time.After(5 * time.Second):
		t.Fatal("rotation hook never fired")
	}
	for i := 11; i <= 13; i++ { // budget exhausted: refuse, and stay refused
		if v := g.Charge(a, 1); !v.Refuse {
			t.Fatalf("charge %d: verdict %+v, want refusal", i, v)
		}
	}
	if g.Refusals() != 3 || g.Rotations() != 1 || g.Noised() != 6 {
		t.Fatalf("counters: refusals=%d rotations=%d noised=%d, want 3, 1, 6", g.Refusals(), g.Rotations(), g.Noised())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(causes) != 1 || !strings.Contains(causes[0], "heavy") {
		t.Fatalf("rotation causes = %q, want one naming the drained client", causes)
	}
	if cb := g.Ledger().Snapshot()[0]; cb.Level != LevelRefused || cb.Refusals != 3 {
		t.Fatalf("account state %+v, want refused level with 3 refusals", cb)
	}
}

// TestLightClientsUnaffected: a second client on the same guard drains its
// own budget, not the heavy client's.
func TestLightClientsUnaffected(t *testing.T) {
	g := ladderGuard(t, PolicyConfig{})
	heavy := g.AccountFor("heavy")
	light := g.AccountFor("light")
	for i := 0; i < 20; i++ {
		g.Charge(heavy, 1)
	}
	if v := g.Charge(light, 1); v.Refuse || v.Sigma != 0 {
		t.Fatalf("light client verdict %+v after heavy exhaustion, want clean", v)
	}
}

// TestRotationRateLimited: two accounts crossing the rotate threshold
// within MinRotateInterval trigger exactly one rotation.
func TestRotationRateLimited(t *testing.T) {
	clk := newFakeClock()
	l, err := NewLedger(LedgerConfig{BudgetEps: 1, QueryEps: 0.1, SecretFraction: 0, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	fired := make(chan string, 8)
	g, err := NewGuard(l, PolicyConfig{
		MinRotateInterval: time.Minute,
		Now:               clk.Now,
		Rotate:            func(cause string) { fired <- cause },
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.AccountFor("a"), g.AccountFor("b")
	g.Charge(a, 9) // straight past the rotate threshold
	g.Charge(b, 9)
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("first rotation never fired")
	}
	select {
	case cause := <-fired:
		t.Fatalf("second rotation %q fired inside the rate-limit interval", cause)
	case <-time.After(50 * time.Millisecond):
	}
	if g.Rotations() != 1 {
		t.Fatalf("rotations = %d, want 1", g.Rotations())
	}
	// Past the interval, a fresh account's crossing rotates again.
	clk.Advance(2 * time.Minute)
	g.Charge(g.AccountFor("c"), 9)
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("rotation after the rate-limit interval never fired")
	}
}

// TestHysteresisLatch: with refill, a client hovering at a threshold keeps
// its latched level until the budget clears the hysteresis band, and a
// refused client recovers service only past the band.
func TestHysteresisLatch(t *testing.T) {
	clk := newFakeClock()
	l, err := NewLedger(LedgerConfig{BudgetEps: 1, QueryEps: 0.1, SecretFraction: 0, RefillPerSec: 0.1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGuard(l, PolicyConfig{NoiseSigma: 0.1, NoiseAt: 0.5, RotateAt: 0.2, Hysteresis: 0.1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	a := g.AccountFor("flapper")
	for i := 0; i < 5; i++ { // remaining 0.5: noise level latched
		g.Charge(a, 1)
	}
	if a.level.Load() != LevelNoise {
		t.Fatalf("level = %d, want noise", a.level.Load())
	}
	// Refill 0.1 then charge 0.1: remaining returns to exactly 0.5 — inside
	// the hysteresis band, so the level must hold.
	clk.Advance(time.Second)
	if v := g.Charge(a, 1); v.Sigma != 0.1 {
		t.Fatalf("verdict %+v inside hysteresis band, want sigma 0.1", v)
	}
	// Refill 0.3 without charging the band away: remaining 0.7 > NoiseAt +
	// Hysteresis (0.6), so the next charge de-escalates to clean.
	clk.Advance(3 * time.Second)
	if v := g.Charge(a, 1); v.Sigma != 0 {
		t.Fatalf("verdict %+v past hysteresis band, want clean", v)
	}
	if a.level.Load() != LevelOK {
		t.Fatalf("level = %d after recovery, want OK", a.level.Load())
	}

	// Drain to refusal, then recover: service resumes only once remaining
	// clears the hysteresis fraction of the budget.
	for i := 0; i < 20; i++ {
		g.Charge(a, 2)
	}
	if v := g.Charge(a, 1); !v.Refuse {
		t.Fatal("exhausted account must refuse")
	}
	clk.Advance(500 * time.Millisecond) // refills 0.05 < hysteresis 0.1
	if v := g.Charge(a, 1); !v.Refuse {
		t.Fatal("refusal must latch inside the hysteresis band")
	}
	clk.Advance(2 * time.Second) // refills well past the band
	if v := g.Charge(a, 1); v.Refuse {
		t.Fatal("service must resume once remaining clears the hysteresis band")
	}
}

// TestObserveModeNeverActs: accounting-only mode drains budgets for the
// admin plane but never noises, rotates, or refuses.
func TestObserveModeNeverActs(t *testing.T) {
	rotations := make(chan string, 1)
	g := ladderGuard(t, PolicyConfig{Observe: true, Rotate: func(c string) { rotations <- c }})
	a := g.AccountFor("heavy")
	for i := 0; i < 30; i++ {
		if v := g.Charge(a, 1); v.Refuse || v.Sigma != 0 {
			t.Fatalf("observe-mode verdict %+v, want clean service", v)
		}
	}
	if !g.Observing() {
		t.Fatal("Observing() = false")
	}
	if g.Refusals() != 0 {
		t.Fatalf("observe mode recorded %d refusals", g.Refusals())
	}
	// Drain is reported honestly, clamped at the full budget.
	cb := g.Ledger().Snapshot()[0]
	if cb.Drained != 1 || cb.RemainingEps != 0 {
		t.Fatalf("observed drain %+v, want fully drained", cb)
	}
}

// TestChargeSteadyStateDoesNotAllocate pins the guard's cost contract: a
// charge on a healthy account is atomics only — the property that keeps the
// serving loop at 0 allocs/op with the ledger enabled.
func TestChargeSteadyStateDoesNotAllocate(t *testing.T) {
	l, err := NewLedger(LedgerConfig{BudgetEps: 1e12, QueryEps: 1e-6, SecretFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGuard(l, PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a := g.AccountFor("steady")
	if allocs := testing.AllocsPerRun(200, func() { g.Charge(a, 4) }); allocs != 0 {
		t.Fatalf("Charge allocated %v times per run, want 0", allocs)
	}
	// The noised regime is just as clean: drain into the noise band first.
	l2, _ := NewLedger(LedgerConfig{BudgetEps: 1, QueryEps: 1e-9, SecretFraction: 0})
	g2, _ := NewGuard(l2, PolicyConfig{})
	b := g2.AccountFor("noisy")
	b.spent.Store(int64(0.6 * float64(l2.budget)))
	if allocs := testing.AllocsPerRun(200, func() { g2.Charge(b, 1) }); allocs != 0 {
		t.Fatalf("noised Charge allocated %v times per run, want 0", allocs)
	}
}

// TestGuardConcurrentLadderRace drives many goroutines through every policy
// regime under -race.
func TestGuardConcurrentLadderRace(t *testing.T) {
	l, err := NewLedger(LedgerConfig{BudgetEps: 1, QueryEps: 0.001, SecretFraction: 0})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGuard(l, PolicyConfig{Rotate: func(string) {}, MinRotateInterval: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	a := g.AccountFor("contended")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				g.Charge(a, 1)
			}
		}()
	}
	wg.Wait()
	if v := g.Charge(a, 1); !v.Refuse {
		t.Fatalf("account must end exhausted; got %+v (spent %v)", v, a.SpentEps())
	}
	if g.Refusals() == 0 {
		t.Fatal("concurrent drain recorded no refusals")
	}
}
