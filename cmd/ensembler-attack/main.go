// Command ensembler-attack mounts the paper's model inversion attacks
// against a pipeline saved by ensembler-train, playing the adversarial
// server: it gets the N body networks and the observed client features,
// trains shadow networks and decoders on in-distribution auxiliary data, and
// reports reconstruction quality.
//
//	ensembler-attack -model ensembler.gob -kind cifar10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ensembler/internal/attack"
	"ensembler/internal/data"
	"ensembler/internal/ensemble"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "ensembler-attack: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: parse, load the victim
// pipeline, mount the attacks, returning errors instead of exiting.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ensembler-attack", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modelPath := fs.String("model", "ensembler.gob", "trained pipeline from ensembler-train")
	kindName := fs.String("kind", "cifar10", "workload the pipeline was trained on")
	auxN := fs.Int("aux", 224, "attacker auxiliary samples")
	evalN := fs.Int("eval", 48, "victim images to reconstruct")
	shadowEpochs := fs.Int("shadow-epochs", 25, "shadow training epochs")
	seed := fs.Int64("seed", 7, "attack seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	var kind data.Kind
	switch *kindName {
	case "cifar10":
		kind = data.CIFAR10Like
	case "cifar100":
		kind = data.CIFAR100Like
	case "celeba":
		kind = data.CelebALike
	default:
		return fmt.Errorf("unknown workload %q", *kindName)
	}

	e, err := ensemble.LoadFile(*modelPath)
	if err != nil {
		return fmt.Errorf("loading model: %w", err)
	}
	// The attacker's data is in-distribution but disjoint from training: a
	// different generator stream.
	sp := data.Generate(data.Config{Kind: kind, Train: 1, Aux: *auxN, Test: *evalN, Seed: *seed + 1000})

	cfg := attack.Config{
		Arch: e.Cfg.Arch, ShadowEpochs: *shadowEpochs, DecoderEpochs: 8,
		BatchSize: 32, ShadowLR: 0.01, Seed: *seed, StructuredShadow: true,
	}
	fmt.Fprintf(stdout, "attacking %s (N=%d bodies)...\n", *modelPath, e.Cfg.N)
	singles := attack.SingleBodyAttacks(cfg, e.Bodies(), e, sp.Aux, sp.Test, *evalN)
	for _, o := range singles {
		fmt.Fprintf(stdout, "  %s\n", o)
	}
	fmt.Fprintf(stdout, "strongest single-body (by SSIM): %s\n", attack.BestBy(singles, "ssim"))
	fmt.Fprintf(stdout, "strongest single-body (by PSNR): %s\n", attack.BestBy(singles, "psnr"))
	fmt.Fprintf(stdout, "adaptive (all %d bodies + learned gates): %s\n",
		e.Cfg.N, attack.AdaptiveAttack(cfg, e.Bodies(), e, sp.Aux, sp.Test, *evalN))
	fmt.Fprintf(stdout, "brute-force subset space: %.0f candidates (O(2^N), §III-D)\n",
		ensemble.SubsetCount(e.Cfg.N))
	return nil
}
