package nn_test

import (
	"math"
	"testing"

	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// Flatten and Reshape2D4D return views that ALIAS their input's backing
// array (tensor.Reshape / arena.View — a reshape must not copy activations).
// That is only sound while every downstream layer treats its input as
// read-only: a single in-place consumer would corrupt the original header
// mid-pass. The tests below are the enforcement for that contract — they
// fail on any layer that mutates its input, in either precision, so an
// in-place "optimization" added later cannot silently break the views.

// TestLayersDoNotMutateInput walks both test stacks layer by layer, in eval
// Forward and in ForwardInfer, snapshotting each layer's input and requiring
// it bit-identical after the layer ran. Because reshaped views share their
// backing array, a layer mutating a view fails the check on the view itself —
// the pass covers the aliased case by construction.
func TestLayersDoNotMutateInput(t *testing.T) {
	for _, tc := range []struct {
		name  string
		net   *nn.Network
		shape []int
	}{
		{"resnet", resnetLikeStack(), []int{2, 3, 16, 16}},
		{"decoder", decoderLikeStack(), []int{3, 12}},
	} {
		warm := tensor.New(tc.shape...)
		rng.New(41).FillNormal(warm.Data, 0, 1)
		tc.net.Forward(warm, true) // settle batch-norm running statistics

		x := tensor.New(tc.shape...)
		rng.New(42).FillNormal(x.Data, 0, 1)
		cur := x
		for i, l := range tc.net.Layers {
			before := append([]float64(nil), cur.Data...)
			next := l.Forward(cur, false)
			for k, v := range cur.Data {
				if math.Float64bits(v) != math.Float64bits(before[k]) {
					t.Fatalf("%s: layer %d (%T) mutated its input at %d in eval Forward", tc.name, i, l, k)
				}
			}
			cur = next
		}

		s := nn.NewScratch()
		cur = x
		for i, l := range tc.net.Layers {
			il, ok := l.(nn.InferenceLayer)
			if !ok {
				t.Fatalf("%s: layer %d (%T) has no inference path", tc.name, i, l)
			}
			before := append([]float64(nil), cur.Data...)
			next := il.ForwardInfer(cur, s)
			for k, v := range cur.Data {
				if math.Float64bits(v) != math.Float64bits(before[k]) {
					t.Fatalf("%s: layer %d (%T) mutated its input at %d in ForwardInfer", tc.name, i, l, k)
				}
			}
			cur = next
		}
	}
}

// TestForwardInferPreservesCallerInput pins the same read-only contract at
// the network boundary for both precisions: the caller's input tensor — in
// serving, an arena-decoded request or a reshaped view of one — comes back
// bit-identical from a full inference pass.
func TestForwardInferPreservesCallerInput(t *testing.T) {
	net := resnetLikeStack()
	warm := tensor.New(2, 3, 16, 16)
	rng.New(43).FillNormal(warm.Data, 0, 1)
	net.Forward(warm, true)

	x := tensor.New(2, 3, 16, 16)
	rng.New(44).FillNormal(x.Data, 0, 1)
	before := append([]float64(nil), x.Data...)
	net.ForwardInfer(x, nn.NewScratch())
	for k, v := range x.Data {
		if math.Float64bits(v) != math.Float64bits(before[k]) {
			t.Fatalf("f64 ForwardInfer mutated the caller's input at %d", k)
		}
	}

	n32, err := nn.CompileF32(net)
	if err != nil {
		t.Fatal(err)
	}
	x32 := tensor.Narrow32(x)
	before32 := append([]float32(nil), x32.Data...)
	n32.ForwardInfer(x32, nn.NewScratch32())
	for k, v := range x32.Data {
		if math.Float32bits(v) != math.Float32bits(before32[k]) {
			t.Fatalf("f32 ForwardInfer mutated the caller's input at %d", k)
		}
	}
}

// TestFlattenInferReturnsView pins the zero-copy half of the bargain: the
// inference-path reshape must stay a view (same backing array), because a
// defensive copy here would put an O(activations) allocation back on the
// serving hot path.
func TestFlattenInferReturnsView(t *testing.T) {
	x := tensor.New(2, 4, 3, 3)
	rng.New(45).FillNormal(x.Data, 0, 1)
	s := nn.NewScratch()
	out := nn.NewFlatten().ForwardInfer(x, s)
	if len(out.Shape) != 2 || out.Shape[0] != 2 || out.Shape[1] != 36 {
		t.Fatalf("flatten shape %v, want [2 36]", out.Shape)
	}
	if &out.Data[0] != &x.Data[0] {
		t.Fatal("Flatten.ForwardInfer copied its input; it must alias")
	}
	out4d := nn.NewReshape2D4D(4, 3, 3).ForwardInfer(out, s)
	if &out4d.Data[0] != &x.Data[0] {
		t.Fatal("Reshape2D4D.ForwardInfer copied its input; it must alias")
	}
}
