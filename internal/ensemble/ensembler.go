package ensemble

import (
	"fmt"
	"io"
	"math"
	"sync"

	"ensembler/internal/data"
	"ensembler/internal/metrics"
	"ensembler/internal/nn"
	"ensembler/internal/optim"
	"ensembler/internal/rng"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
)

// Config parameterizes the Ensembler training pipeline.
type Config struct {
	Arch   split.Arch
	N      int     // server bodies in the ensemble
	P      int     // secretly activated bodies
	Sigma  float64 // std of the fixed Gaussian noise (paper: 0.1)
	Lambda float64 // cosine-similarity regularizer strength (Eq. 3)
	Seed   int64

	Stage1 split.TrainOptions // per-member training (Eq. 2)
	Stage3 split.TrainOptions // head/tail retraining (Eq. 3)

	// Stage1Noise disables the per-member fixed noise when false — the DR-N
	// ablation ("without the first stage training") from Table II.
	Stage1Noise bool
	// Dropout, when positive, inserts dropout before every FC tail (the DR
	// defense family).
	Dropout float64
	// RegAllHeads extends the Eq. 3 max over all N stage-1 heads instead of
	// only the P selected ones (an ablation knob; the paper regularizes
	// against the previous heads of the selected subset).
	RegAllHeads bool
}

// DefaultConfig mirrors the paper's operating point scaled to this
// substrate: N=10, P=4, σ=0.1, λ=0.5.
func DefaultConfig(kind data.Kind, seed int64) Config {
	return Config{
		Arch:        split.DefaultArch(kind),
		N:           10,
		P:           4,
		Sigma:       0.1,
		Lambda:      0.5,
		Seed:        seed,
		Stage1Noise: true,
	}
}

// Ensembler is a trained selective-ensemble pipeline: the N stage-1 member
// networks (whose bodies live on the server), the client's secret Selector,
// and the final Stage-3 head, noise and tail retained by the client.
type Ensembler struct {
	Cfg      Config
	Members  []*split.Model // stage-1 networks; Members[i].Body is server net i
	Selector *Selector
	Head     *nn.Network       // final client head Mc,h
	Noise    *nn.AdditiveNoise // Stage-3 fixed noise
	Tail     *nn.Network       // final client tail Mc,t (input P·FeatureDim)
}

// New builds the untrained skeleton of a pipeline: N freshly initialized
// members, a secretly drawn selector, and the final head/noise/tail. Train
// runs the three training stages over exactly this skeleton; Load overwrites
// its parameters with saved ones; tests and serving benches use it directly
// when trained weights are irrelevant (an untrained network costs exactly as
// much to run as a trained one).
func New(cfg Config) *Ensembler {
	if cfg.N <= 0 || cfg.P <= 0 || cfg.P > cfg.N {
		panic(fmt.Sprintf("ensemble: invalid N=%d P=%d", cfg.N, cfg.P))
	}
	root := rng.New(cfg.Seed)
	e := &Ensembler{Cfg: cfg}
	for i := 0; i < cfg.N; i++ {
		r := root.Split()
		sigma := cfg.Sigma
		if !cfg.Stage1Noise {
			sigma = 0
		}
		e.Members = append(e.Members,
			split.NewModel(fmt.Sprintf("member%d", i), cfg.Arch, sigma, nn.NoiseFixed, cfg.Dropout, r))
	}
	e.Selector = NewSelector(cfg.N, cfg.P, root.Split())
	r3 := root.Split()
	e.Head = cfg.Arch.NewHead("final.head", r3)
	c, h, w := cfg.Arch.HeadOutShape()
	if cfg.Sigma > 0 {
		e.Noise = nn.NewAdditiveNoise("final.noise", nn.NoiseFixed, c, h, w, cfg.Sigma, r3.Split())
	}
	e.Tail = cfg.Arch.NewTail("final.tail", cfg.P, cfg.Dropout, r3)
	return e
}

// Train runs the full three-stage pipeline of Fig. 2 on the private training
// set. log (optional) receives progress lines.
func Train(cfg Config, train *data.Dataset, log io.Writer) *Ensembler {
	e := New(cfg)

	// Stage 1 (Eq. 2): train N independent networks, each with its own fixed
	// Gaussian noise after the head so the resulting heads are mutually
	// quasi-orthogonal.
	for i, m := range e.Members {
		opts := cfg.Stage1
		opts.Seed = cfg.Seed*1000 + int64(i)
		loss := split.Train(m, train, opts)
		if log != nil {
			fmt.Fprintf(log, "stage1: member %d/%d trained, final loss %.4f\n", i+1, cfg.N, loss)
		}
	}

	// Stage 2: the client secretly selects P of the N networks (New already
	// drew the subset; it becomes meaningful here, after the members exist).
	if log != nil {
		fmt.Fprintf(log, "stage2: secret selection drawn (P=%d of N=%d)\n", cfg.P, cfg.N)
	}

	// Stage 3 (Eq. 3): freeze the selected bodies; retrain the fresh head and
	// tail with the new fixed noise, regularizing the head's output to be
	// quasi-orthogonal to every stage-1 head's.
	e.trainStage3(train, log)
	return e
}

// regHeads returns the stage-1 heads the Eq. 3 regularizer maxes over.
func (e *Ensembler) regHeads() []*nn.Network {
	var heads []*nn.Network
	for i, m := range e.Members {
		if e.Cfg.RegAllHeads || e.Selector.Contains(i) {
			heads = append(heads, m.Head)
		}
	}
	return heads
}

// trainStage3 optimizes the final head and tail against the frozen selected
// bodies with loss CE + λ·max_i CS (Eq. 3).
func (e *Ensembler) trainStage3(train *data.Dataset, log io.Writer) {
	opts := e.Cfg.Stage3
	if opts.Epochs == 0 {
		opts.Epochs = 6
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = 32
	}
	if opts.LR == 0 {
		opts.LR = 0.05
	}
	if opts.Momentum == 0 {
		opts.Momentum = 0.9
	}
	r := rng.New(e.Cfg.Seed*7919 + 13)
	params := append(e.Head.Params(), e.Tail.Params()...)
	opt := optim.NewSGD(params, opts.LR, opts.Momentum, opts.WeightDecay)
	sched := optim.StepDecay(opts.LR, 0.5, max(1, opts.Epochs/2))
	regHeads := e.regHeads()
	featDim := e.Cfg.Arch.FeatureDim()

	for epoch := 0; epoch < opts.Epochs; epoch++ {
		opt.SetLR(sched(epoch))
		total, batches := 0.0, 0
		for _, idxs := range train.Batches(opts.BatchSize, r) {
			x, labels := train.Batch(idxs)

			// Forward: head → noise → each selected frozen body → selector
			// concat → tail.
			headOut := e.Head.Forward(x, true)
			noised := headOut
			if e.Noise != nil {
				noised = e.Noise.Forward(headOut, true)
			}
			branch := make([]*tensor.Tensor, e.Selector.P)
			for j, i := range e.Selector.Indices {
				branch[j] = e.Members[i].Body.Forward(noised, false)
			}
			cat := e.Selector.ApplySelected(branch)
			logits := e.Tail.Forward(cat, true)
			loss, gradLogits := nn.SoftmaxCrossEntropy(logits, labels)

			// Backward through tail and the frozen bodies (parameter grads
			// of the bodies are discarded; only the input gradient matters).
			gcat := e.Tail.Backward(gradLogits)
			parts := e.Selector.SplitGrad(gcat, featDim)
			gradNoised := tensor.New(noised.Shape...)
			for j, i := range e.Selector.Indices {
				gradNoised.AddInPlace(e.Members[i].Body.Backward(parts[j]))
				e.Members[i].Body.ZeroGrad()
			}
			gradHeadOut := gradNoised
			if e.Noise != nil {
				gradHeadOut = e.Noise.Backward(gradNoised)
			}

			// Eq. 3 regularizer: penalize max_i cosine similarity between
			// the new head's output and stage-1 head i's output.
			regVal, regGrad := maxCosineRegularizer(headOut, x, regHeads)
			loss += e.Cfg.Lambda * regVal
			gradHeadOut.AddScaledInPlace(regGrad, e.Cfg.Lambda)

			e.Head.Backward(gradHeadOut)
			optim.ClipGradNorm(params, 5)
			opt.Step()
			total += loss
			batches++
		}
		if log != nil {
			fmt.Fprintf(log, "stage3: epoch %d/%d loss %.4f\n", epoch+1, opts.Epochs, total/float64(batches))
		}
	}
}

// maxCosineRegularizer computes R = mean_s max_i cos²(a_s, b^i_s) where a is
// the new head's output on the batch and b^i the i-th stage-1 head's output,
// together with dR/da. The max is taken per sample (subgradient: the
// gradient flows through the argmax head only).
//
// The paper's Eq. 3 penalizes max CS directly; squaring makes the optimum
// *orthogonality* (CS = 0) rather than anti-correlation (CS = −1). An
// anti-correlated head is as invertible as the original — reproduction runs
// with the raw-CS penalty drove the cosine to −0.5 and lost the protection,
// so the squared form implements the paper's stated intent ("as
// quasi-orthogonal ... as possible").
func maxCosineRegularizer(headOut, x *tensor.Tensor, heads []*nn.Network) (float64, *tensor.Tensor) {
	n := headOut.Shape[0]
	d := headOut.Size() / n
	grad := tensor.New(headOut.Shape...)
	if len(heads) == 0 {
		return 0, grad
	}
	outs := make([]*tensor.Tensor, len(heads))
	for i, h := range heads {
		outs[i] = h.Forward(x, false)
	}
	total := 0.0
	for s := 0; s < n; s++ {
		a := headOut.Data[s*d : (s+1)*d]
		best, bestI := -1.0, 0
		for i := range outs {
			b := outs[i].Data[s*d : (s+1)*d]
			if c := cosine(a, b); c*c > best {
				best, bestI = c*c, i
			}
		}
		total += best
		// d cos²(a,b)/da = 2·cos · (b/(|a||b|) − cos·a/|a|²).
		b := outs[bestI].Data[s*d : (s+1)*d]
		cos := cosine(a, b)
		na, nb := norm(a), norm(b)
		if na == 0 || nb == 0 {
			continue
		}
		g := grad.Data[s*d : (s+1)*d]
		inv := 1 / (na * nb)
		for j := range g {
			g[j] = 2 * cos * (b[j]*inv - cos*a[j]/(na*na)) / float64(n)
		}
	}
	return total / float64(n), grad
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func norm(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// ClientFeatures returns the intermediate output the server observes for x:
// the final head's output plus the Stage-3 fixed noise.
func (e *Ensembler) ClientFeatures(x *tensor.Tensor) *tensor.Tensor {
	f := e.Head.Forward(x, false)
	if e.Noise != nil {
		f = e.Noise.Forward(f, false)
	}
	return f
}

// Bodies returns all N live server networks — the weights the adversarial
// server holds and can attack with. The N networks are distinct, so running
// them concurrently with each other is safe, but each individual body caches
// forward state and must be used by one goroutine at a time; serving stacks
// that need several independent copies should use CloneBodies.
func (e *Ensembler) Bodies() []*nn.Network {
	out := make([]*nn.Network, len(e.Members))
	for i, m := range e.Members {
		out[i] = m.Body
	}
	return out
}

// ServerCompute runs every body on the transmitted features, as the real
// server would (it cannot know which are selected). The N passes fan out
// across goroutines — the paper's §III-D observation that the O(N) server
// cost parallelizes because the bodies are independent — and join before
// returning, in body order.
func (e *Ensembler) ServerCompute(features *tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(e.Members))
	var wg sync.WaitGroup
	for i, m := range e.Members {
		wg.Add(1)
		go func(i int, b *nn.Network) {
			defer wg.Done()
			out[i] = b.Forward(features, false)
		}(i, m.Body)
	}
	wg.Wait()
	return out
}

// BodyScratch is the reusable per-body inference storage for
// ServerComputeWith: one nn.Scratch per ensemble body plus the output list,
// owned by one goroutine. The audit engine's replay loop and other
// steady-state callers hold one and reuse it across calls, so repeated
// server-side passes stop allocating per layer.
type BodyScratch struct {
	per []*nn.Scratch
	out []*tensor.Tensor
}

// NewBodyScratch builds an empty scratch set for the ensemble's N bodies;
// the first ServerComputeWith pass sizes it.
func (e *Ensembler) NewBodyScratch() *BodyScratch {
	bs := &BodyScratch{per: make([]*nn.Scratch, len(e.Members)), out: make([]*tensor.Tensor, len(e.Members))}
	for i := range bs.per {
		bs.per[i] = nn.NewScratch()
	}
	return bs
}

// ServerComputeWith is ServerCompute over caller-owned scratch storage: the
// N body passes run serially in inference mode (no goroutine fan-out — the
// caller decides where parallelism lives, exactly as the comm serving
// workers do), and every returned tensor lives in bs until the next call.
// Callers that retain a result across calls must copy it.
func (e *Ensembler) ServerComputeWith(features *tensor.Tensor, bs *BodyScratch) []*tensor.Tensor {
	for i, m := range e.Members {
		bs.per[i].Reset()
		bs.out[i] = m.Body.ForwardInfer(features, bs.per[i])
	}
	return bs.out
}

// Predict runs the full collaborative pipeline (client → all N server bodies
// → secret selector → client tail) and returns logits.
func (e *Ensembler) Predict(x *tensor.Tensor) *tensor.Tensor {
	feats := e.ServerCompute(e.ClientFeatures(x))
	return e.Tail.Forward(e.Selector.Apply(feats), false)
}

// Accuracy evaluates end-to-end classification accuracy on ds.
func (e *Ensembler) Accuracy(ds *data.Dataset) float64 {
	return split.EvaluateFn(ds, e.Predict)
}

// HeadCosines reports the mean per-sample cosine similarity between the
// final head's output and each stage-1 head's output on batch x — the
// quantity the Stage-3 regularizer pushed down, and the measurable sense in
// which the deployed head differs from every network the attacker can
// reconstruct.
func (e *Ensembler) HeadCosines(x *tensor.Tensor) []float64 {
	a := e.Head.Forward(x, false)
	n := x.Shape[0]
	out := make([]float64, len(e.Members))
	for i, m := range e.Members {
		b := m.Head.Forward(x, false)
		s := 0.0
		for j := 0; j < n; j++ {
			s += metrics.CosineSimilarity(a.SampleView(j), b.SampleView(j))
		}
		out[i] = s / float64(n)
	}
	return out
}
