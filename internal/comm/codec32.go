package comm

// The float32 half of the binary codec: decoding requests straight into the
// job's f32 arena and encoding f32 responses. The wire format is unchanged —
// the same tensor layout, dtype bytes, and trust-boundary validation as
// codec.go — only where the payload lands differs. An f32-wire payload on a
// PrecisionF32 server moves bits with Float32frombits/Float32bits and never
// touches float64, which is the tentpole's no-conversion guarantee (and the
// fix for the old double rounding: f32 payload → f64 compute → f32 encode).

import (
	"encoding/binary"
	"fmt"
	"math"

	"ensembler/internal/tensor"
	"ensembler/internal/trace"
)

// tensor32 decodes one tensor into the f32 arena, with the same
// validate-before-allocate rule as wireReader.tensor. An f32 payload copies
// raw bits (no conversion); an f64 payload is the sanctioned single
// narrowing of a float64 client's features on an f32 server.
func (r *wireReader) tensor32(a *tensor.Arena32, shapeBuf []int) (*tensor.Tensor32, error) {
	rank, err := r.u8()
	if err != nil {
		return nil, err
	}
	if rank == 0 || rank > maxWireRank {
		return nil, fmt.Errorf("comm: tensor rank %d out of range [1,%d]", rank, maxWireRank)
	}
	dtype, err := r.u8()
	if err != nil {
		return nil, err
	}
	width := 8
	switch dtype {
	case wireDtypeF64:
	case wireDtypeF32:
		width = 4
	default:
		return nil, fmt.Errorf("comm: unknown tensor dtype %d", dtype)
	}
	shape := shapeBuf[:0]
	maxElems := r.remaining() / width
	n := 1
	for i := 0; i < int(rank); i++ {
		d, err := r.u32()
		if err != nil {
			return nil, err
		}
		if d == 0 {
			return nil, fmt.Errorf("comm: zero tensor dimension")
		}
		if n *= int(d); n > maxElems {
			return nil, fmt.Errorf("comm: tensor of %d elements exceeds frame size", n)
		}
		shape = append(shape, int(d))
	}
	if r.remaining() < n*width {
		return nil, fmt.Errorf("comm: tensor payload truncated (%d elements, %d bytes left)", n, r.remaining())
	}
	t := a.NewTensor(shape...)
	src := r.b[r.off:]
	if dtype == wireDtypeF64 {
		for i := 0; i < n; i++ {
			t.Data[i] = float32(math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:])))
		}
		r.off += 8 * n
	} else {
		for i := 0; i < n; i++ {
			t.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
		}
		r.off += 4 * n
	}
	return t, nil
}

// parseRequestInto32 is parseRequestInto for a PrecisionF32 server: the
// routing header decodes into req as usual, but the tensors land in
// j.feat32/j.inputs32 over the job's f32 arena — req.Features and req.Inputs
// stay nil, which is how the serving path recognizes an f32-decoded job.
func parseRequestInto32(body []byte, req *Request, j *job, tc *trace.Context) error {
	r := wireReader{b: body}
	msg, err := r.u8()
	if err != nil {
		return err
	}
	switch msg {
	case wireMsgRequest:
	case wireMsgRequestTraced:
		id, err := r.u64()
		if err != nil {
			return err
		}
		tflags, err := r.u8()
		if err != nil {
			return err
		}
		if id == 0 {
			return fmt.Errorf("comm: traced request frame carries zero trace ID")
		}
		if tc != nil {
			tc.ID = id
			tc.Sampled = tflags&wireTraceSampled != 0
		}
	default:
		return fmt.Errorf("comm: expected request frame, got message type %d", msg)
	}
	mlen, err := r.u16()
	if err != nil {
		return err
	}
	if mlen > maxWireModel {
		return fmt.Errorf("comm: model name of %d bytes exceeds wire limit", mlen)
	}
	if req.Model, err = r.str(mlen); err != nil {
		return err
	}
	ver, err := r.u32()
	if err != nil {
		return err
	}
	if ver > math.MaxInt32 {
		return fmt.Errorf("comm: version %d out of range", ver)
	}
	req.Version = int(ver)
	kind, err := r.u8()
	if err != nil {
		return err
	}
	count, err := r.u16()
	if err != nil {
		return err
	}
	// The job donates its persistent shape buffer, as in parseRequestInto.
	shapeBuf := j.shape[:0]
	switch kind {
	case wireKindFeatures:
		if count != 1 {
			return fmt.Errorf("comm: feature request carries %d tensors, want 1", count)
		}
		if j.feat32, err = r.tensor32(&j.arena32, shapeBuf); err != nil {
			return err
		}
	case wireKindBatched:
		if count == 0 {
			return fmt.Errorf("comm: batched request carries no inputs")
		}
		inputs := j.inputs32[:0]
		for i := 0; i < count; i++ {
			t, err := r.tensor32(&j.arena32, shapeBuf)
			if err != nil {
				return err
			}
			inputs = append(inputs, t)
		}
		j.inputs32 = inputs
	default:
		return fmt.Errorf("comm: unknown request kind %d", kind)
	}
	if r.remaining() != 0 {
		return fmt.Errorf("comm: %d trailing bytes after request", r.remaining())
	}
	return nil
}

// appendTensor32 encodes one float32 tensor. On the f32 wire the payload is
// raw Float32bits — zero conversion; on the f64 wire each value widens
// exactly (every float32 is a float64), so a float64 client sees precisely
// what the f32 compute produced, rounded nowhere further.
func appendTensor32(buf []byte, t *tensor.Tensor32, f32 bool) []byte {
	buf = append(buf, byte(len(t.Shape)))
	if f32 {
		buf = append(buf, wireDtypeF32)
	} else {
		buf = append(buf, wireDtypeF64)
	}
	for _, d := range t.Shape {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	if f32 {
		for _, v := range t.Data {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	} else {
		for _, v := range t.Data {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(v)))
		}
	}
	return buf
}

// appendResponse32 encodes a response whose payload lives in the job's f32
// storage (j.f32Resp): header fields come from resp, tensors from
// j.feats32/j.outputs32. Mirrors appendResponse's layout and limits.
func appendResponse32(buf []byte, j *job, resp *Response, f32, withCode bool, traceID uint64) ([]byte, error) {
	if len(resp.Model) > maxWireModel {
		return buf, fmt.Errorf("comm: model name of %d bytes exceeds wire limit %d", len(resp.Model), maxWireModel)
	}
	if len(resp.Err) > math.MaxUint16 {
		return buf, fmt.Errorf("comm: error string of %d bytes exceeds wire limit", len(resp.Err))
	}
	if resp.Code < 0 || resp.Code > math.MaxUint16 {
		return buf, fmt.Errorf("comm: response code %d out of wire range", resp.Code)
	}
	if traceID != 0 {
		buf = append(buf, wireMsgResponseTraced)
		buf = binary.LittleEndian.AppendUint64(buf, traceID)
	} else {
		buf = append(buf, wireMsgResponse)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(resp.Model)))
	buf = append(buf, resp.Model...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(resp.Version))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(resp.Err)))
	buf = append(buf, resp.Err...)
	if withCode {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(resp.Code))
	}
	if len(j.outputs32) > 0 {
		outer := len(j.outputs32)
		inner := len(j.outputs32[0])
		if outer > math.MaxUint16 || inner > math.MaxUint16 {
			return buf, fmt.Errorf("comm: response outputs %d×%d exceed wire limits", outer, inner)
		}
		buf = append(buf, wireKindBatched)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(outer))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(inner))
		for _, row := range j.outputs32 {
			if len(row) != inner {
				return buf, fmt.Errorf("comm: ragged response outputs (%d vs %d per input)", len(row), inner)
			}
			for _, t := range row {
				if t == nil {
					return buf, fmt.Errorf("comm: nil tensor in response outputs")
				}
				buf = appendTensor32(buf, t, f32)
			}
		}
		return buf, nil
	}
	buf = append(buf, wireKindFeatures)
	if len(j.feats32) > math.MaxUint16 {
		return buf, fmt.Errorf("comm: response of %d feature maps exceeds wire limit", len(j.feats32))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(j.feats32)))
	for _, t := range j.feats32 {
		if t == nil {
			return buf, fmt.Errorf("comm: nil tensor in response features")
		}
		buf = appendTensor32(buf, t, f32)
	}
	return buf, nil
}
